"""The hardware object allocator: the Fig. 6 state machines.

Allocation and free execute against the HOT-resident arena header of the
request's size class. Hits complete in two cycles. Misses perform header
write-back, list surgery, header fetches from the cache hierarchy, and —
when no available arena exists — an arena request to the hardware page
allocator. The eager-refill optimization starts that work when the last
free object of the resident arena is taken, hiding the miss latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.arena import ArenaHeader, HEADER_BYTES
from repro.core.config import MementoConfig
from repro.core.errors import MementoDoubleFreeError
from repro.core.hot import HardwareObjectTable
from repro.core.lists import ArenaList
from repro.core.region import MementoRegion
from repro.obs import events as obs_events
from repro.obs import profile as obs_profile
from repro.sim.params import LINE_SHIFT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.page_allocator import HardwarePageAllocator
    from repro.kernel.process import Process
    from repro.sim.machine import Core


class HardwareObjectAllocator:
    """Per-core object allocator bound to one process's Memento region."""

    def __init__(
        self,
        core: "Core",
        process: "Process",
        region: MementoRegion,
        page_allocator: "HardwarePageAllocator",
        config: MementoConfig,
        thread_id: int = 0,
    ) -> None:
        self.core = core
        self.process = process
        self.thread_id = thread_id
        self.region = region
        self.page_allocator = page_allocator
        self.config = config
        self.machine = core.machine
        self.costs = self.machine.costs
        stats = self.machine.stats
        self.stats = stats.scoped("memento.obj")
        self.hot = HardwareObjectTable(config, stats.scoped("memento.hot"))
        self.available: List[ArenaList] = [
            ArenaList("available", stats.scoped("memento.list.available"))
            for _ in range(config.num_size_classes)
        ]
        self.full: List[ArenaList] = [
            ArenaList("full", stats.scoped("memento.list.full"))
            for _ in range(config.num_size_classes)
        ]
        #: The in-memory view of every live arena header, keyed by base VA.
        self.headers: Dict[int, ArenaHeader] = {}
        #: Arena refills already started by the eager-refill optimization.
        self._refill_hidden: Dict[int, bool] = {}
        # Hot-path hoists: obj-alloc/obj-free run once per trace Alloc/Free
        # event, so the region geometry, HOT entry array, fixed cycle
        # charges, and counter cells are all bound here once.
        self._mrs = region.mrs
        self._mre = region.mre
        self._per_class = region.per_class_bytes
        self._spans = region.spans
        self._hot_entries = self.hot.entries
        self._hot_alloc_hits = self.hot._alloc_hits
        self._hot_alloc_misses = self.hot._alloc_misses
        self._hot_free_hits = self.hot._free_hits
        self._hot_free_misses = self.hot._free_misses
        self._base_cycles = self.costs.isa_issue + self.costs.hot_hit
        self._small_threshold = config.small_threshold
        self._eager_refill = config.eager_refill
        self._hw_alloc_cell = core.cycle_counter("hw_alloc")
        self._hw_free_cell = core.cycle_counter("hw_free")
        self._allocs_cell = self.stats.counter("allocs")
        self._frees_cell = self.stats.counter("frees")
        self._hidden_cell = self.stats.counter("hidden_miss_cycles")
        #: Sampled hardware-event ring, bound at construction (None keeps
        #: the obj-alloc/obj-free fast paths to one attribute test each).
        self._ring = obs_events.RING
        # Cycle-attribution cells, bound the same way: disabled costs one
        # None test per obj-alloc/obj-free; the cells never charge cycles.
        profile = obs_profile.PROFILE
        if profile is None:
            self._p_alloc_hit = None
            self._p_alloc_miss = None
            self._p_free_hit = None
            self._p_free_miss = None
            self._h_alloc = None
            self._h_free = None
        else:
            self._p_alloc_hit = profile.cell("hot.alloc_hit")
            self._p_alloc_miss = profile.cell("hot.alloc_miss")
            self._p_free_hit = profile.cell("hot.free_hit")
            self._p_free_miss = profile.cell("hot.free_miss")
            self._h_alloc = profile.hist("op.alloc")
            self._h_free = profile.hist("op.free")

    # -- obj-alloc (Fig. 6 steps 5-9) ----------------------------------------

    def obj_alloc(self, size: int) -> int:
        """Execute obj-alloc: returns the allocated virtual address."""
        if not 0 < size <= self._small_threshold:
            raise ValueError(
                f"obj-alloc size {size} outside (0, "
                f"{self.config.small_threshold}]"
            )
        size_class = (size + 7) // 8 - 1
        cycles = self._base_cycles
        header = self._hot_entries[size_class].header

        if header is not None and header.bitmap != header.full_mask:
            self._hot_alloc_hits.pending += 1
            if self._ring is not None:
                self._ring.record("hot.alloc_hit", size_class)
            if self._p_alloc_hit is not None:
                self._p_alloc_hit.add(cycles)
        else:
            miss_cycles = self._switch_arena(size_class)
            header = self._hot_entries[size_class].header
            if self._refill_hidden.pop(size_class, False):
                # The eager refill already completed this work off the
                # critical path; only the HOT access itself is paid.
                self._hidden_cell.pending += miss_cycles
            else:
                cycles += miss_cycles
            self._hot_alloc_misses.pending += 1
            if self._ring is not None:
                self._ring.record("hot.alloc_miss", size_class)
            if self._p_alloc_miss is not None:
                self._p_alloc_miss.add(cycles)

        # Priority-encoder scan + bitmap set, fused (find_free_slot +
        # set_slot; the arena is guaranteed non-full here).
        inverted = ~header.bitmap & header.full_mask
        bit = inverted & -inverted
        header.bitmap |= bit
        if not inverted - bit and self._eager_refill:
            # That was the last free object: start loading/requesting the
            # next arena now so the coming miss is already satisfied (§3.1).
            self._refill_hidden[size_class] = True
        core = self.core
        core.cycles += cycles
        self._hw_alloc_cell.pending += cycles
        self._allocs_cell.pending += 1
        if self._h_alloc is not None:
            self._h_alloc.record(cycles)
        return (
            header.va
            + HEADER_BYTES
            + (bit.bit_length() - 1)
            * (header.obj_size or self.config.object_size(size_class))
        )

    def _switch_arena(self, size_class: int) -> int:
        """Replace the resident arena of ``size_class``; returns cycles.

        Covers Fig. 6 steps 8 (load from the available list) and 9 (no
        valid arena — request a new one from the page allocator).
        """
        cycles = 0
        available = self.available[size_class]
        if available:
            header = available.pop_head()
            cycles += self.costs.hot_miss_header_fetch
            cycles += self.costs.list_op  # available-head update
        else:
            header = self._request_arena(size_class)
            cycles += self.costs.arena_request
        replaced = self.hot.fill(size_class, header)
        if replaced is not None:
            cycles += self.costs.hot_writeback
            self._writeback_header(replaced)
            target = (
                self.full[size_class]
                if replaced.is_full
                else self.available[size_class]
            )
            cycles += self.costs.list_op * target.push_head(replaced)
        return cycles

    def _request_arena(self, size_class: int) -> ArenaHeader:
        """Fig. 6 steps 1-4: new arena from the page allocator, header
        initialized and instantiated in the cache (never fetched from
        DRAM — its contents are new)."""
        va, header_pfn = self.page_allocator.alloc_arena(
            self.core, self.process, size_class, self.thread_id
        )
        header = ArenaHeader(
            va=va,
            size_class=size_class,
            pa=header_pfn << 12,
            objects=self.config.objects_per_arena,
            obj_size=self.config.object_size(size_class),
        )
        self.headers[va] = header
        self.core.caches.instantiate(header.pa, write=True)
        self.stats.add("arenas_initialized")
        return header

    # -- obj-free (Fig. 6 steps 10-13) ------------------------------------------

    def obj_free(self, addr: int, header: Optional[ArenaHeader] = None) -> None:
        """Execute obj-free for an in-region address.

        Callers that already hold the covering header (the runtime resolves
        it for the bypass hook anyway) may pass it to skip re-deriving the
        arena base — the derived values are identical by construction.
        """
        core = self.core
        if header is not None:
            size_class = header.size_class
            arena_base = header.va
        else:
            offset = addr - self._mrs
            if offset < 0 or addr >= self._mre:
                raise ValueError(
                    f"{addr:#x} is outside the Memento region"
                )
            size_class = offset // self._per_class
            class_offset = offset - size_class * self._per_class
            arena_base = addr - class_offset % self._spans[size_class]
        cycles = self._base_cycles
        resident = self._hot_entries[size_class].header

        if resident is not None and resident.va == arena_base:
            header = resident
            self._hot_free_hits.pending += 1
            if self._ring is not None:
                self._ring.record("hot.free_hit", size_class)
            # Inlined _clear_checked: recover the slot index and clear its
            # bitmap bit, validating the operand like the hardware does.
            offset = addr - arena_base - HEADER_BYTES
            obj_size = header.obj_size or self.config.object_size(size_class)
            if offset < 0 or offset % obj_size:
                raise ValueError(f"{addr:#x} is not an object boundary")
            index = offset // obj_size
            if index >= header.objects:
                raise ValueError(f"object index {index} out of range")
            mask = 1 << index
            if not header.bitmap & mask:
                raise MementoDoubleFreeError(
                    f"double free of {addr:#x} (arena {header.va:#x} slot "
                    f"{index})"
                )
            header.bitmap &= ~mask
            if self._p_free_hit is not None:
                self._p_free_hit.add(cycles)
        else:
            self._hot_free_misses.pending += 1
            if self._ring is not None:
                self._ring.record("hot.free_miss", size_class)
            header = self.headers.get(arena_base)
            if header is None:
                raise MementoDoubleFreeError(
                    f"{addr:#x} does not belong to a live arena"
                )
            # Translate the arena base (TLB first, marked walk on a miss)
            # and fetch the header line from the hierarchy.
            vpn = arena_base >> 12
            pfn = core.tlb.lookup(vpn)
            if pfn is None:
                pfn = self.page_allocator.handle_walk(
                    core, self.process, arena_base
                )
                core.tlb.insert(vpn, pfn)
            result = core.caches.access_line(
                (pfn << 12 | (arena_base & 0xFFF)) >> LINE_SHIFT, write=True
            )
            cycles += result.cycles
            was_full = header.is_full
            self._clear_checked(header, addr)
            if was_full:
                # Move full -> available (head insert), Fig. 6 step 13.
                cycles += self.costs.list_op * self.full[size_class].remove(
                    header
                )
                cycles += self.costs.list_op * self.available[
                    size_class
                ].push_head(header)
            if header.is_empty:
                cycles += self._release_empty_arena(header)
            if self._p_free_miss is not None:
                self._p_free_miss.add(cycles)
        core.cycles += cycles
        self._hw_free_cell.pending += cycles
        self._frees_cell.pending += 1
        if self._h_free is not None:
            self._h_free.record(cycles)

    def _clear_checked(self, header: ArenaHeader, addr: int) -> None:
        index = header.object_index(addr, self.config)
        if not header.clear_slot(index):
            raise MementoDoubleFreeError(
                f"double free of {addr:#x} (arena {header.va:#x} slot "
                f"{index})"
            )

    def _release_empty_arena(self, header: ArenaHeader) -> int:
        """A non-resident arena lost its last object: return its pages."""
        cycles = 0
        if header.list_name == "available":
            cycles += self.costs.list_op * self.available[
                header.size_class
            ].remove(header)
        elif header.list_name == "full":  # pragma: no cover - empty≠full
            cycles += self.costs.list_op * self.full[
                header.size_class
            ].remove(header)
        del self.headers[header.va]
        self.page_allocator.free_arena(
            self.core, self.process, header.va, header.size_class
        )
        self.stats.add("arenas_released")
        return cycles

    # -- write-back / flush -----------------------------------------------------

    def _writeback_header(self, header: ArenaHeader) -> None:
        """Replaced HOT entries are written back to their memory location
        using the entry's PA field (§3.1)."""
        self.core.caches.access_line(header.pa >> LINE_SHIFT, write=True)

    def flush_for_switch(self, core: "Core") -> int:
        """Context switch: write back and drop every valid HOT entry.

        Resident arenas return to the appropriate per-class list so a
        later switch-in finds them through memory. Returns the number of
        entries flushed (the kernel charges the per-entry cost, §6.6).
        """
        flushed = 0
        for size_class in range(self.config.num_size_classes):
            entry = self.hot.lookup(size_class)
            if not entry.valid:
                continue
            header = entry.header
            self._writeback_header(header)
            target = (
                self.full[size_class]
                if header.is_full
                else self.available[size_class]
            )
            target.push_head(header)
            flushed += 1
        self.hot.flush()
        self._refill_hidden.clear()
        return flushed

    # -- introspection ------------------------------------------------------------

    def header_of(self, addr: int) -> Optional[ArenaHeader]:
        """The live arena header covering ``addr`` (bypass engine hook).

        Runs once per touched object and per routed free, so the region
        arithmetic is inlined against the hoisted geometry.
        """
        offset = addr - self._mrs
        if offset < 0 or addr >= self._mre:
            return None
        size_class = offset // self._per_class
        class_offset = offset - size_class * self._per_class
        arena_base = addr - class_offset % self._spans[size_class]
        header = self.headers.get(arena_base)
        if header is None or addr < arena_base + HEADER_BYTES:
            return None  # unknown arena, or the header line itself
        return header

    def occupancy_fraction(self, include_empty: bool = False) -> float:
        """Allocated fraction of live arena slots (fragmentation probe).

        By default empty arenas (resident-but-idle size classes) are
        excluded: the §6.6 fragmentation metric asks how densely the
        memory actively given to the HOT is used.
        """
        capacity = used = 0
        for header in self.headers.values():
            if header.is_empty and not include_empty:
                continue
            capacity += header.objects
            used += header.live_objects
        return used / capacity if capacity else 1.0

    @property
    def live_arenas(self) -> int:
        return len(self.headers)
