"""Memento: the paper's hardware memory-management design (§3).

* :mod:`repro.core.region` — the reserved per-process virtual region
  (MRS/MRE) carved evenly into 64 size-class sub-regions.
* :mod:`repro.core.arena` — arena headers (VA, bitmap, bypass counter,
  prev/next) and the arena body layout of Fig. 5.
* :mod:`repro.core.hot` — the per-core Hardware Object Table.
* :mod:`repro.core.object_allocator` — the hardware object allocator state
  machines of Fig. 6.
* :mod:`repro.core.page_allocator` — the memory-controller page allocator:
  bump pointers + AAC, the physical page pool, and the hardware-managed
  Memento page table.
* :mod:`repro.core.bypass` — the main-memory bypass engine (§3.3).
* :mod:`repro.core.runtime` — obj-alloc/obj-free ISA semantics and the
  malloc/free routing layer that integrates with language runtimes (§4).
"""

from repro.core.arena import ArenaHeader, arena_span_bytes
from repro.core.config import MementoConfig
from repro.core.errors import (
    MementoDoubleFreeError,
    MementoError,
    RegionExhaustedError,
)
from repro.core.ephemeral_gc import EphemeralAwareGc, EphemeralGcConfig
from repro.core.hot import HardwareObjectTable
from repro.core.multithread import MultiThreadMementoRuntime
from repro.core.object_allocator import HardwareObjectAllocator
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.region import MementoRegion
from repro.core.runtime import MementoProcessContext, MementoRuntime

__all__ = [
    "ArenaHeader",
    "EphemeralAwareGc",
    "EphemeralGcConfig",
    "HardwareObjectAllocator",
    "HardwareObjectTable",
    "HardwarePageAllocator",
    "MementoConfig",
    "MementoDoubleFreeError",
    "MementoError",
    "MementoProcessContext",
    "MementoRegion",
    "MementoRuntime",
    "MultiThreadMementoRuntime",
    "RegionExhaustedError",
    "arena_span_bytes",
]
