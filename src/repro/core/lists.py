"""Doubly-linked arena lists (available / full) with operation counting.

Arenas of each size class live on one of two lists: *available* (at least
one free object) or *full* (§3.1). List surgery happens on HOT misses and
is rare — Fig. 13 shows <1 % of allocations and <0.6 % of frees touch a
list — but each pointer update is a real memory operation, so operations
are counted and charged by the callers.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.arena import ArenaHeader
from repro.sim.stats import ScopedStats


class ArenaList:
    """An intrusive doubly-linked list of arena headers.

    Uses the headers' own prev/next fields (the hardware updates those
    fields in the in-memory headers through the cache hierarchy).
    """

    __slots__ = (
        "name",
        "stats",
        "head",
        "_length",
        "_pushes",
        "_removes",
        "_pointer_updates",
    )

    def __init__(self, name: str, stats: ScopedStats) -> None:
        self.name = name
        self.stats = stats
        self.head: Optional[ArenaHeader] = None
        self._length = 0
        self._pushes = stats.counter("pushes")
        self._removes = stats.counter("removes")
        self._pointer_updates = stats.counter("pointer_updates")

    def push_head(self, header: ArenaHeader) -> int:
        """Insert at the head; returns the number of pointer updates."""
        if header.list_name is not None:
            raise ValueError(
                f"arena {header.va:#x} is already on the "
                f"{header.list_name} list"
            )
        updates = 1  # head pointer
        header.list_name = self.name
        # A header that last left a list through corrupted surgery could
        # carry a stale prev; the head's prev must always be None
        # (audit rule: arena-list-membership).
        header.prev = None
        header.next = self.head
        if self.head is not None:
            self.head.prev = header
            updates += 1
        self.head = header
        self._length += 1
        self._pushes.add()
        self._pointer_updates.add(updates)
        return updates

    def pop_head(self) -> Optional[ArenaHeader]:
        """Remove and return the head arena (None if the list is empty)."""
        header = self.head
        if header is None:
            return None
        self.remove(header)
        return header

    def remove(self, header: ArenaHeader) -> int:
        """Unlink ``header``; returns the number of pointer updates."""
        if header.list_name != self.name:
            # Without this check a header parked on *another* list (or on
            # no list, with a stale prev/next pair left over from a HOT
            # fill) would be silently spliced out of the wrong list,
            # corrupting both lists' lengths and linkage
            # (audit rule: arena-list-membership).
            raise ValueError(
                f"arena {header.va:#x} is on list "
                f"{header.list_name!r}, not {self.name!r}"
            )
        updates = 0
        if header.prev is not None:
            header.prev.next = header.next
            updates += 1
        elif self.head is header:
            self.head = header.next
            updates += 1
        else:
            raise ValueError(f"arena {header.va:#x} is not on list {self.name}")
        if header.next is not None:
            header.next.prev = header.prev
            updates += 1
        header.prev = None
        header.next = None
        header.list_name = None
        self._length -= 1
        self._removes.add()
        self._pointer_updates.add(updates)
        return updates

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self.head is not None

    def __iter__(self) -> Iterator[ArenaHeader]:
        node = self.head
        while node is not None:
            yield node
            node = node.next

    def __contains__(self, header: ArenaHeader) -> bool:
        return any(node is header for node in self)
