"""Main-memory bypass (§3.3).

Newly allocated objects carry no defined contents, so their first-touch
fetches need not read DRAM: Memento instantiates the lines in the LLC
(zeroed) instead. Tracking which lines are "new" uses the per-arena
*bypass counter*: lines of the arena are touched roughly sequentially as
the bitmap populates, so any line with index >= the counter has provably
never been accessed. The counter is 11 bits — enough for the largest
arena's line count — and is decremented on frees that release the
highest-touched line, letting reused slots bypass again.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.arena import HEADER_BYTES, ArenaHeader
from repro.core.config import MementoConfig
from repro.sim.cache import AccessResult
from repro.sim.params import LINE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Core

#: Saturation value of the 11-bit counter.
COUNTER_MAX = (1 << 11) - 1


class BypassEngine:
    """Decides, per line access, whether DRAM can be bypassed."""

    __slots__ = (
        "config",
        "enabled",
        "stats",
        "_bypassed_lines",
        "_regular_lines",
        "_counter_decrements",
    )

    def __init__(self, config: MementoConfig, stats) -> None:
        self.config = config
        self.enabled = config.bypass_enabled
        self.stats = stats
        self._bypassed_lines = stats.counter("bypassed_lines")
        self._regular_lines = stats.counter("regular_lines")
        self._counter_decrements = stats.counter("counter_decrements")

    def access(
        self,
        core: "Core",
        header: ArenaHeader,
        addr: int,
        write: bool,
        cache_addr: Optional[int] = None,
    ) -> AccessResult:
        """Route one object-line access through the hierarchy.

        Lines above the arena's bypass counter are instantiated in the LLC
        (no DRAM fetch); everything else is a normal access. The counter
        advances to cover the touched line either way. ``cache_addr`` is
        the physical address used for the hierarchy (defaults to the
        virtual address for callers without a translation in hand); the
        counter math always uses the virtual ``addr``.
        """
        # (addr - va) // LINE_SIZE, inlined from header.body_line_index —
        # this runs once per simulated line touch on the Memento stack.
        # Once the counter saturates it can no longer distinguish touched
        # from untouched lines at or above COUNTER_MAX, so those lines
        # must take the regular path (audit rule: bypass-soundness).
        line_index = (addr - header.va) >> 6
        if line_index >= header.bypass_counter:
            bypassable = self.enabled and line_index < COUNTER_MAX
            header.bypass_counter = (
                line_index + 1 if line_index < COUNTER_MAX else COUNTER_MAX
            )
        else:
            bypassable = False
        target = cache_addr if cache_addr is not None else addr
        if bypassable:
            self._bypassed_lines.pending += 1
            return core.caches.instantiate(target, write=write)
        self._regular_lines.pending += 1
        return core.caches.access(target, write=write)

    def on_free(self, header: ArenaHeader, addr: int, size: int) -> None:
        """Shrink the counter when the top-most touched line frees up.

        The decrement is bitmap-guided: the counter may only drop to just
        past the last body line of the highest still-allocated slot (a
        priority encode from the top of the bitmap in hardware). Dropping
        to the freed object's first line — the previous behaviour — could
        expose a boundary line shared with a live, written neighbour, and
        a later re-allocation would then zero that neighbour's data
        (audit rule: bypass-soundness). A saturated counter never shrinks:
        past COUNTER_MAX the hardware has lost track of which high lines
        were touched (audit rule: bypass-counter-saturation).
        """
        if not self.enabled:
            return
        counter = header.bypass_counter
        if counter >= COUNTER_MAX:
            return
        last_line = (addr + size - 1) // LINE_SIZE - header.va // LINE_SIZE
        if last_line + 1 != counter:
            return
        top_slots = header.bitmap.bit_length()  # highest live slot + 1
        if top_slots:
            obj_size = header.obj_size
            if not obj_size:
                return  # no geometry recorded; keep the counter as-is
            new_counter = (
                (HEADER_BYTES + top_slots * obj_size - 1) // LINE_SIZE + 1
            )
        else:
            new_counter = 1  # arena empty: every body line is dead
        if new_counter < counter:
            header.bypass_counter = new_counter
            self._counter_decrements.add()
