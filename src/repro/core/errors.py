"""Typed Memento exceptions.

Hardware-detected error conditions are raised to software as exceptions
(§3.4 discusses double frees being "handled graciously by raising an
exception to software").
"""


class MementoError(Exception):
    """Base class for Memento hardware errors."""


class MementoDoubleFreeError(MementoError):
    """obj-free of an address whose allocation bit is already clear."""


class RegionExhaustedError(MementoError):
    """A size class ran out of reserved virtual address space."""


class PoolExhaustedError(MementoError):
    """The physical page pool could not be replenished by the OS."""


class NotAMementoAddressError(MementoError):
    """obj-free of an address outside the process's Memento region."""
