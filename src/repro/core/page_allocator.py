"""The hardware page allocator at the memory controller (§3.2).

Responsibilities:

1. **Arena virtual allocation** — per-size-class bump pointers hand out
   arena-sized virtual ranges from the process's reserved region; the hot
   pointers are cached in the Arena Allocation Cache (AAC). Freed arena
   spans are recycled through a per-class stack so long-running processes
   (§6.1's data-processing study) never exhaust the region — a small
   hardware free-stack the paper leaves unspecified; see DESIGN.md.
2. **Physical backing** — a small pool of free physical pages, replenished
   by the OS on demand, eagerly backs each new arena's first (header) page
   and lazily backs the rest when the MMU's marked page-walk requests reach
   the allocator. Mappings live in a per-process, hardware-managed Memento
   page table rooted at the MPTR register.
3. **Arena free** — reclaims the arena's pages and page-table entries and
   issues TLB shootdowns to every core recorded in the process's walker
   bit-vector.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.core.arena import arena_span_bytes
from repro.core.config import MementoConfig
from repro.core.errors import PoolExhaustedError, RegionExhaustedError
from repro.core.region import MementoRegion
from repro.kernel.buddy import OutOfMemoryError
from repro.kernel.page_table import PageTable
from repro.obs import events as obs_events
from repro.obs import profile as obs_profile
from repro.sim.params import PAGE_SHIFT, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.sim.machine import Core


class ProcessPageState:
    """Per-process state held by the page allocator.

    ``threads`` > 1 slices every size class's sub-region into per-thread
    windows (multiples of the arena span), realizing §3.4's "each thread
    manages its own arena whose virtual address range is maintained by
    hardware": ownership of any object address is recoverable from the
    address alone.
    """

    def __init__(
        self,
        region: MementoRegion,
        allocator: "HardwarePageAllocator",
        threads: int = 1,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self.region = region
        self.allocator = allocator
        self.threads = threads
        #: MPTR-rooted hardware-managed page table; node pages come from
        #: the pool.
        self.page_table = PageTable(
            alloc_table_page=allocator._alloc_table_page,
            free_table_page=allocator._free_table_page,
        )
        #: Next unused arena VA per (thread, size class) bump pointer.
        self.bump: Dict[Tuple[int, int], int] = {}
        #: Recycled arena VAs per (thread, size class).
        self.free_spans: Dict[Tuple[int, int], List[int]] = {}
        #: Cores that have issued page walks for this address space —
        #: the shootdown bit-vector of §3.2.
        self.walker_cores: Set[int] = set()

    def thread_slice(self, thread_id: int, size_class: int) -> Tuple[int, int]:
        """``[start, end)`` of a thread's window in a class sub-region.

        Windows are aligned to the class's arena span so the §3.2 address
        arithmetic (round down to the span) stays exact.
        """
        if not 0 <= thread_id < self.threads:
            raise ValueError(f"thread {thread_id} out of range")
        span = arena_span_bytes(size_class, self.allocator.config)
        arenas_total = self.region.arenas_per_class(size_class)
        per_thread = arenas_total // self.threads
        if per_thread == 0:
            raise RegionExhaustedError(
                f"size class {size_class} cannot host {self.threads} threads"
            )
        base = self.region.class_base(size_class)
        start = base + thread_id * per_thread * span
        return start, start + per_thread * span

    def owner_thread(self, size_class: int, arena_base: int) -> int:
        """Which thread's window contains ``arena_base`` (§3.4 ownership
        check: compare the address against the thread's VA range)."""
        span = arena_span_bytes(size_class, self.allocator.config)
        arenas_total = self.region.arenas_per_class(size_class)
        per_thread = arenas_total // self.threads
        offset = arena_base - self.region.class_base(size_class)
        return min(self.threads - 1, (offset // span) // per_thread)


class ArenaAllocationCache:
    """The AAC: 32-entry direct-mapped cache, indexed by core ID (§3.2).

    Each entry caches the bump pointers of a core's frequently used size
    classes; an access to an uncached class costs a fetch from the
    reserved memory block.
    """

    def __init__(self, config: MementoConfig, stats) -> None:
        self.config = config
        self.stats = stats
        self.entries: Dict[int, OrderedDict] = {}
        #: Sampled hardware-event ring, bound at construction.
        self._ring = obs_events.RING

    def access(self, core_id: int, size_class: int) -> bool:
        """Touch (core, class); return True on an AAC hit."""
        entry = self.entries.setdefault(core_id % 32, OrderedDict())
        if size_class in entry:
            entry.move_to_end(size_class)
            self.stats.add("hits")
            if self._ring is not None:
                self._ring.record("aac.hit", size_class)
            return True
        if len(entry) >= self.config.aac_classes_per_core:
            entry.popitem(last=False)
        entry[size_class] = True
        self.stats.add("misses")
        if self._ring is not None:
            self._ring.record("aac.miss", size_class)
        return False

    def hit_rate(self) -> float:
        hits = self.stats["hits"]
        total = hits + self.stats["misses"]
        return hits / total if total else 1.0


class HardwarePageAllocator:
    """Memory-controller page allocator shared by all cores."""

    def __init__(self, kernel: "Kernel", config: MementoConfig) -> None:
        self.kernel = kernel
        self.machine = kernel.machine
        self.config = config
        self.stats = self.machine.stats.scoped("memento.page")
        self.aac = ArenaAllocationCache(
            config, self.machine.stats.scoped("memento.aac")
        )
        self.pool: List[int] = []
        self._states: Dict[int, ProcessPageState] = {}
        #: Sampled hardware-event ring, bound at construction.
        self._ring = obs_events.RING
        # Cycle-attribution cells (see obs/profile.py): bound here so the
        # disabled path pays one None test per method-level operation.
        profile = obs_profile.PROFILE
        if profile is None:
            self._p_aac_hit = None
            self._p_aac_miss = None
            self._p_page_fill = None
            self._p_arena_free = None
            self._p_shootdown = None
            self._p_replenish = None
            self._p_walk = None
            self._h_walk = None
        else:
            self._p_aac_hit = profile.cell("aac.hit")
            self._p_aac_miss = profile.cell("aac.miss")
            self._p_page_fill = profile.cell("hw_page.fill")
            self._p_arena_free = profile.cell("hw_page.arena_free")
            self._p_shootdown = profile.cell("tlb.shootdown")
            self._p_replenish = profile.cell("kernel.pool_replenish")
            self._p_walk = profile.cell("walk.page_walk")
            self._h_walk = profile.hist("op.page_walk")

    # -- process attach/detach ---------------------------------------------

    def attach(
        self,
        process: "Process",
        region: MementoRegion,
        threads: int = 1,
    ) -> ProcessPageState:
        """The OS reserved ``region`` for ``process``; set up MPTR state."""
        if process.pid in self._states:
            raise ValueError(f"process {process.pid} already attached")
        state = ProcessPageState(region, self, threads)
        self._states[process.pid] = state
        return state

    def state_of(self, process: "Process") -> ProcessPageState:
        return self._states[process.pid]

    # -- the physical page pool ------------------------------------------------

    def _take_pool_page(self, core: "Core") -> int:
        """Draw one frame from the pool, replenishing from the OS first if
        the pool is at its low-water mark."""
        if len(self.pool) <= self.config.pool_low_water:
            self._replenish(core)
        if not self.pool:
            raise PoolExhaustedError("OS could not replenish the page pool")
        return self.pool.pop()

    def _replenish(self, core: "Core") -> None:
        """OS hands the pool a batch of free pages (rare, off critical
        path in steady state but charged when it happens)."""
        costs = self.machine.costs
        pages = self.config.pool_replenish_pages
        try:
            frames = self.kernel.buddy.alloc_pages(pages)
        except OutOfMemoryError as exc:  # pragma: no cover - 64 GB machine
            raise PoolExhaustedError(str(exc)) from exc
        self.pool.extend(frames)
        self.machine.frames.charge("memento", pages)
        cycles = costs.syscall_entry_exit + pages * costs.buddy_alloc // 8
        core.charge(cycles, "kernel_page")
        if self._p_replenish is not None:
            self._p_replenish.add(cycles)
        self.stats.add("replenishments")
        self.stats.add("pool_pages_granted", pages)

    def _alloc_table_page(self) -> int:
        """Frame source for Memento page-table nodes (from the pool)."""
        if not self.pool:
            # Table growth can happen mid-walk; replenish against core 0.
            self._replenish(self.machine.core)
            if not self.pool:
                raise PoolExhaustedError(
                    "OS could not replenish the page pool"
                )
        pfn = self.pool.pop()
        self.machine.frames.move("memento", "kernel")
        self.stats.add("table_pages_created")
        self.stats.add("table_pages_live")
        live = self.stats["table_pages_live"]
        if live > self.stats["table_pages_peak"]:
            self.stats.set("table_pages_peak", live)
        return pfn

    def _free_table_page(self, pfn: int) -> None:
        self.pool.append(pfn)
        self.machine.frames.move("kernel", "memento")
        self.stats.add("table_pages_live", -1)


    def _zero_fill_leaf(self, core: "Core", pfn: int) -> None:
        """Without the bypass mechanism the hardware must zero pages
        eagerly at fill time for isolation (pool pages may have held other
        processes' data); the zero lines are written through the cache
        hierarchy just as the kernel's fault-time zeroing is, polluting it
        and eventually writing back to DRAM. With bypass on, zeroing is
        lazy — only the lines actually touched are instantiated, in the
        LLC, which is the mechanism's saving (§3.3)."""
        if self.config.bypass_enabled:
            return
        cycles = self.machine.costs.hw_page_fill // 2
        core.charge(cycles, "hw_page")
        if self._p_page_fill is not None:
            self._p_page_fill.add(cycles)
        core.caches.zero_fill_page(pfn << 12)
        self.stats.add("hw_zeroed_pages")

    # -- arena allocation (object allocator → page allocator) -----------------

    def alloc_arena(
        self,
        core: "Core",
        process: "Process",
        size_class: int,
        thread_id: int = 0,
    ) -> Tuple[int, int]:
        """Allocate an arena VA and eagerly back its header page.

        Returns ``(arena_va, header_pfn)``. Charges the AAC access, the
        bump-pointer update, and the header-page backing. With multiple
        threads, the VA comes from the requesting thread's window.
        """
        costs = self.machine.costs
        state = self.state_of(process)
        aac_hit = self.aac.access(core.core_id, size_class)
        cycles = costs.aac_hit if aac_hit else costs.aac_miss
        if self._p_aac_hit is not None:
            (self._p_aac_hit if aac_hit else self._p_aac_miss).add(cycles)

        key = (thread_id, size_class)
        recycled = state.free_spans.get(key)
        if recycled:
            va = recycled.pop()
        else:
            start, limit = state.thread_slice(thread_id, size_class)
            va = state.bump.get(key, start)
            span = arena_span_bytes(size_class, self.config)
            if va + span > limit:
                raise RegionExhaustedError(
                    f"size class {size_class} exhausted thread "
                    f"{thread_id}'s window"
                )
            state.bump[key] = va + span

        header_pfn = self._take_pool_page(core)
        state.page_table.map(va >> PAGE_SHIFT, header_pfn)
        self.machine.frames.move("memento", "user")
        self._zero_fill_leaf(core, header_pfn)
        cycles += costs.hw_page_fill
        if self._p_page_fill is not None:
            self._p_page_fill.add(costs.hw_page_fill)
        core.charge(cycles, "hw_page")
        self.stats.add("arenas_allocated")
        self.stats.add("arena_pages_mapped")
        return va, header_pfn

    # -- lazy backing via marked page walks -------------------------------------

    def handle_walk(
        self, core: "Core", process: "Process", vaddr: int
    ) -> int:
        """Service a marked page-walk request for an in-region address.

        Walks the Memento page table through the cache hierarchy; invalid
        entries at any level are populated from the pool ("the page
        allocator constructs the Memento page table on page walk requests").
        Returns the leaf frame. No kernel involvement.
        """
        costs = self.machine.costs
        state = self.state_of(process)
        state.walker_cores.add(core.core_id)
        vpn = vaddr >> PAGE_SHIFT
        walk_cycles = 0
        for node_pfn in state.page_table.walk_path(vpn):
            result = core.caches.access_line(node_pfn << 6)
            core.charge(result.cycles, "walk")
            walk_cycles += result.cycles
        if self._p_walk is not None:
            self._p_walk.add(walk_cycles)
            self._h_walk.record(walk_cycles)
        pfn = state.page_table.walk(vpn)
        if pfn is not None:
            self.stats.add("walks_mapped")
            return pfn
        pfn = self._take_pool_page(core)
        state.page_table.map(vpn, pfn)
        self.machine.frames.move("memento", "user")
        self._zero_fill_leaf(core, pfn)
        core.charge(costs.hw_page_fill, "hw_page")
        if self._p_page_fill is not None:
            self._p_page_fill.add(costs.hw_page_fill)
        self.stats.add("walks_filled")
        self.stats.add("arena_pages_mapped")
        return pfn

    # -- arena free -----------------------------------------------------------------

    def free_arena(
        self, core: "Core", process: "Process", va: int, size_class: int
    ) -> int:
        """Reclaim an arena's backed pages; returns pages freed.

        Unmaps every backed page of the span, returns frames to the pool,
        invalidates page-table entries (freeing emptied table pages), and
        sends TLB shootdowns to every core that has walked this address
        space.
        """
        costs = self.machine.costs
        state = self.state_of(process)
        span = arena_span_bytes(size_class, self.config)
        base_vpn = va >> PAGE_SHIFT
        freed = 0
        for page in range(span // PAGE_SIZE):
            vpn = base_vpn + page
            if state.page_table.walk(vpn) is None:
                continue
            pfn, _tables = state.page_table.unmap(vpn)
            self.pool.append(pfn)
            self.machine.frames.move("user", "memento")
            freed += 1
            for core_id in state.walker_cores:
                self.machine.cores[core_id].tlb.invalidate(vpn)
        remote = len(state.walker_cores - {core.core_id})
        free_cycles = freed * costs.hw_arena_free_per_page
        shootdown_cycles = remote * costs.tlb_shootdown
        core.charge(free_cycles + shootdown_cycles, "hw_page")
        if self._p_arena_free is not None:
            self._p_arena_free.add(free_cycles)
            if remote:
                self._p_shootdown.count += remote
                self._p_shootdown.cycles += shootdown_cycles
        if remote and self._ring is not None:
            self._ring.record("tlb.shootdown", remote)
        owner = state.owner_thread(size_class, va)
        state.free_spans.setdefault((owner, size_class), []).append(va)
        self.stats.add("arenas_freed")
        self.stats.add("arena_pages_freed", freed)
        return freed

    # -- teardown ------------------------------------------------------------------

    def release_process(self, core: "Core", process: "Process") -> int:
        """Batch-release every arena page of an exiting process.

        The hardware walks the Memento page table once, returning all leaf
        frames to the pool; this is the low-latency batch free of §1.
        Returns pages released.
        """
        costs = self.machine.costs
        state = self._states.pop(process.pid, None)
        if state is None:
            return 0
        leaf_pfns, _interior = state.page_table.clear()
        for pfn in leaf_pfns:
            self.pool.append(pfn)
        if leaf_pfns:
            self.machine.frames.move("user", "memento", len(leaf_pfns))
        # clear() already routed interior node frames through
        # _free_table_page; release_root() sends the root back the same
        # way, keeping table_pages and the pool ledger in lockstep
        # (audit rule: pool-balance) instead of split-brain manual
        # accounting here.
        state.page_table.release_root()
        for core_id in state.walker_cores:
            self.machine.cores[core_id].tlb.flush()
        core.charge(
            len(leaf_pfns) * costs.hw_arena_free_per_page // 4, "hw_page"
        )
        self.stats.add("process_released_pages", len(leaf_pfns))
        return len(leaf_pfns)

    def return_pool_to_os(self, core: "Core") -> int:
        """Give pool pages back to the kernel (e.g. machine teardown)."""
        returned = len(self.pool)
        for pfn in self.pool:
            self.kernel.buddy.free(pfn)
        if returned:
            self.machine.frames.credit("memento", returned)
        self.pool.clear()
        core.charge(self.machine.costs.syscall_entry_exit, "kernel_page")
        return returned
