"""Memento configuration.

Defaults follow the paper: 64 size classes of 8 B up to 512 B, 256 objects
per arena ("balancing metadata cost and internal fragmentation", §3.1),
bypass on, and the eager-refill optimization that hides HOT-miss latency.
The flags exist so the ablation benches can switch individual mechanisms
off.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Mapping

NUM_SIZE_CLASSES = 64
OBJECTS_PER_ARENA = 256
SMALL_THRESHOLD = NUM_SIZE_CLASSES * 8  # 512 B


@dataclass(frozen=True)
class MementoConfig:
    """Tunable parameters of the Memento hardware.

    Frozen (hence hashable and usable inside a
    :class:`~repro.harness.engine.RunRequest`): every field participates
    in the experiment engine's content key, so two runs differing in any
    parameter here occupy distinct cache entries.
    """

    num_size_classes: int = NUM_SIZE_CLASSES
    objects_per_arena: int = OBJECTS_PER_ARENA
    #: Reserved virtual region per process, divided evenly into size
    #: classes. 64 MB gives each class a 1 MB sub-region — ample for
    #: function-scale heaps with arena-VA recycling — and keeps the
    #: Memento page table compact (two size classes share each PTE page).
    region_bytes: int = 64 << 20
    #: Main-memory bypass for newly allocated lines (§3.3).
    bypass_enabled: bool = True
    #: Eagerly load/request the next arena when the last free object of the
    #: HOT-resident arena is allocated, hiding HOT-miss latency (§3.1).
    eager_refill: bool = True
    #: Pages the OS hands the hardware page pool per replenishment.
    pool_replenish_pages: int = 512
    #: Pool low-water mark that triggers an OS replenishment.
    pool_low_water: int = 32
    #: Per-core AAC entry capacity: bump pointers for this many size
    #: classes are cached ("a small number of size classes per workload is
    #: sufficient", §3.2).
    aac_classes_per_core: int = 16

    @property
    def small_threshold(self) -> int:
        """Largest request served by Memento (bytes)."""
        return self.num_size_classes * 8

    @property
    def per_class_region_bytes(self) -> int:
        """Even carve of the reserved region (§3.2)."""
        return self.region_bytes // self.num_size_classes

    def object_size(self, size_class: int) -> int:
        """Object size in bytes for a 0-based size-class index."""
        if not 0 <= size_class < self.num_size_classes:
            raise ValueError(f"size class {size_class} out of range")
        return (size_class + 1) * 8

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (cache payload / reporting)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MementoConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise ValueError(
                f"unknown MementoConfig fields: {sorted(unknown)}"
            )
        return cls(**dict(data))


DEFAULT_CONFIG = MementoConfig()
