"""Memento arenas: header layout, body layout, and bitmap operations.

An arena is a consecutive virtual range serving one size class (Fig. 5a).
Its header holds the base VA, a 256-bit allocation bitmap, an 11-bit bypass
counter, and prev/next pointers linking it onto the per-class available or
full list. The body is an array of 256 same-size objects.

Layout modeled here: the header occupies the first 64 B cache line of the
arena; the body starts right after it. A header line of 64 B fits VA (6 B)
+ bitmap (32 B) + counter (2 B) + prev/next (12 B) with room to spare, and
keeps single-page arenas for small classes ("an arena can consist of
single or multiple pages depending on the particular size class", §3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import MementoConfig
from repro.sim.params import LINE_SIZE, PAGE_SIZE

#: Bytes of the in-arena header (one cache line).
HEADER_BYTES = LINE_SIZE


def arena_span_bytes(size_class: int, config: MementoConfig) -> int:
    """Page-rounded virtual span of one arena of ``size_class``.

    Known in advance for every class, which is what makes the free-path
    address rounding a pure bit operation.
    """
    body = config.objects_per_arena * config.object_size(size_class)
    raw = HEADER_BYTES + body
    return -(-raw // PAGE_SIZE) * PAGE_SIZE


@dataclass
class ArenaHeader:
    """One arena's bookkeeping state (the Fig. 5a header).

    ``prev``/``next`` link the arena onto its size class's available or
    full doubly-linked list; they reference other headers directly (the
    hardware stores physical addresses — the reference *is* our behavioral
    stand-in, with the PA kept alongside for cost accounting).
    """

    va: int  # base virtual address of the arena
    size_class: int
    pa: int  # physical address of the header (first arena page)
    bitmap: int = 0
    bypass_counter: int = 0
    prev: Optional["ArenaHeader"] = field(default=None, repr=False)
    next: Optional["ArenaHeader"] = field(default=None, repr=False)
    objects: int = 256
    #: Which per-class list the arena currently sits on ("available",
    #: "full", or None while resident in the HOT). Maintained by ArenaList.
    list_name: Optional[str] = field(default=None, repr=False)
    #: Object size in bytes; creators that replay allocations through the
    #: header set it so address math needs no config lookup.
    obj_size: int = field(default=0, repr=False, compare=False)
    #: All-allocated bitmap value, fixed by ``objects``.
    full_mask: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        self.full_mask = (1 << self.objects) - 1

    # -- bitmap operations (what the HOT manipulates) -----------------------

    def find_free_slot(self) -> Optional[int]:
        """Index of a clear bit, or None if the arena is full.

        Hardware scans the bitmap with a priority encoder; lowest index
        first keeps allocation addresses dense.
        """
        inverted = ~self.bitmap & self.full_mask
        if not inverted:
            return None
        return (inverted & -inverted).bit_length() - 1

    def take_next_slot(self) -> int:
        """Claim and return the lowest free slot — the priority-encoder
        scan and the bitmap set fused for the alloc hot path. The caller
        guarantees the arena is not full."""
        inverted = ~self.bitmap & self.full_mask
        bit = inverted & -inverted
        self.bitmap |= bit
        return bit.bit_length() - 1

    def set_slot(self, index: int) -> None:
        """Mark object ``index`` allocated."""
        mask = 1 << self._checked(index)
        if self.bitmap & mask:
            raise ValueError(f"slot {index} is already allocated")
        self.bitmap |= mask

    def clear_slot(self, index: int) -> bool:
        """Mark object ``index`` free; returns False if it was not set
        (double free — the caller raises to software)."""
        mask = 1 << self._checked(index)
        if not self.bitmap & mask:
            return False
        self.bitmap &= ~mask
        return True

    def slot_is_set(self, index: int) -> bool:
        return bool(self.bitmap & (1 << self._checked(index)))

    def _checked(self, index: int) -> int:
        if not 0 <= index < self.objects:
            raise ValueError(f"object index {index} out of range")
        return index

    @property
    def is_full(self) -> bool:
        return self.bitmap == self.full_mask

    @property
    def is_empty(self) -> bool:
        return self.bitmap == 0

    @property
    def live_objects(self) -> int:
        return self.bitmap.bit_count()

    # -- address arithmetic ---------------------------------------------------

    def object_addr(self, index: int, config: MementoConfig) -> int:
        """VA of object ``index`` (header VA + body offset)."""
        return (
            self.va
            + HEADER_BYTES
            + self._checked(index) * config.object_size(self.size_class)
        )

    def object_index(self, addr: int, config: MementoConfig) -> int:
        """Recover the object index from an object VA.

        Raises ValueError for addresses that are not object boundaries —
        hardware validates the operand of obj-free the same way.
        """
        offset = addr - self.va - HEADER_BYTES
        object_size = config.object_size(self.size_class)
        if offset < 0 or offset % object_size:
            raise ValueError(f"{addr:#x} is not an object boundary")
        index = offset // object_size
        self._checked(index)
        return index

    def body_line_index(self, addr: int) -> int:
        """Cache-line index of ``addr`` within the arena (for the bypass
        counter; the 11-bit counter covers the largest arena's lines)."""
        return (addr - self.va) // LINE_SIZE
