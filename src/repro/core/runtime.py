"""Software integration: malloc/free routing onto Memento (§4).

``MementoRuntime`` is the per-process allocation facade the harness drives.
It implements the paper's first integration approach: ``malloc`` checks the
request size and routes small requests to ``obj-alloc``; ``free`` checks
whether the pointer lies inside the Memento region and routes it to
``obj-free``, otherwise to the software allocator. The existing
malloc/free interface is unchanged.

Garbage-collected runtimes integrate the same way (§4): the GC calls
obj-free when it decides objects are dead. For Go, frees are deferred
exactly as the baseline sweeper defers them — buffered until the GOGC
pacing triggers — and anything still live at function exit is batch-freed
by the hardware page allocator when the OS tears the process down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.allocators.base import align8
from repro.allocators.glibc_large import LargeAllocator
from repro.allocators.goalloc import GcPolicy
from repro.core.bypass import BypassEngine
from repro.core.config import MementoConfig
from repro.core.errors import NotAMementoAddressError
from repro.core.isa import MementoIsa
from repro.core.object_allocator import HardwareObjectAllocator
from repro.core.region import MementoRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.page_allocator import HardwarePageAllocator
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.sim.machine import Core

#: Fixed virtual base for per-process Memento regions (outside the mmap
#: window the VmaManager hands out).
REGION_BASE = 0x4000_0000_0000


class MementoProcessContext:
    """Everything Memento holds for one process.

    Created when the OS reserves the region and programs MRS/MRE; attached
    to ``process.memento`` so the kernel can flush the HOT on context
    switches and release arenas at exit.
    """

    def __init__(
        self,
        core: "Core",
        process: "Process",
        page_allocator: "HardwarePageAllocator",
        config: MementoConfig,
    ) -> None:
        base = REGION_BASE + process.pid * config.region_bytes
        self.region = MementoRegion.reserve(base, config)
        self.page_allocator = page_allocator
        self.process = process
        page_allocator.attach(process, self.region)
        self.object_allocator = HardwareObjectAllocator(
            core, process, self.region, page_allocator, config
        )
        self.isa = MementoIsa(self.object_allocator)
        self.bypass = BypassEngine(
            config, core.machine.stats.scoped("memento.bypass")
        )
        self.released = False

    def release_all(self, core: "Core") -> int:
        """Process exit: the page allocator reclaims every arena page."""
        if self.released:
            return 0
        self.released = True
        return self.page_allocator.release_process(core, self.process)


class MementoRuntime:
    """The malloc/free routing layer for one process on one core."""

    def __init__(
        self,
        kernel: "Kernel",
        process: "Process",
        core: "Core",
        language: str,
        page_allocator: "HardwarePageAllocator",
        config: Optional[MementoConfig] = None,
        touch=None,
    ) -> None:
        self.kernel = kernel
        self.process = process
        self.core = core
        self.language = language
        self.config = config or MementoConfig()
        self.costs = kernel.machine.costs.user(language)
        self.context = MementoProcessContext(
            core, process, page_allocator, self.config
        )
        process.memento = self.context
        self.large = LargeAllocator(kernel, process, touch)
        self.stats = kernel.machine.stats.scoped("memento.runtime")
        self._sizes: Dict[int, int] = {}  # live memento addr -> size
        # Deferred-free state for GC'd runtimes (Go).
        self._deferred: List[int] = []
        self._gc = GcPolicy() if language == "go" else None
        # Wrapper hot path: one malloc/free pair per trace Alloc/Free, so
        # the routing constants, ISA entry points, and counter cells are
        # bound once (the ISA layer itself is a pure pass-through).
        allocator = self.context.object_allocator
        self._wrapper = self.costs.wrapper
        self._small_threshold = self.config.small_threshold
        self._mrs = self.context.region.mrs
        self._mre = self.context.region.mre
        self._hw_obj_alloc = allocator.obj_alloc
        self._hw_obj_free = allocator.obj_free
        self._header_of = allocator.header_of
        self._bypass_on_free = self.context.bypass.on_free
        self._hw_alloc_cell = core.cycle_counter("hw_alloc")
        self._hw_free_cell = core.cycle_counter("hw_free")
        self._large_allocs_cell = self.stats.counter("large_allocs")
        self._large_frees_cell = self.stats.counter("large_frees")

    # -- malloc/free (the unchanged software interface) ----------------------

    def malloc(self, size: int) -> int:
        """Route a request: small → obj-alloc, large → software (§4)."""
        wrapper = self._wrapper
        core = self.core
        core.cycles += wrapper
        self._hw_alloc_cell.pending += wrapper
        if size <= 0:
            raise ValueError("allocation size must be positive")
        aligned = (size + 7) & ~7
        if aligned > self._small_threshold:
            self._large_allocs_cell.pending += 1
            return self.large.malloc(core, size)
        addr = self._hw_obj_alloc(size)
        self._sizes[addr] = size
        if self._gc is not None and self._gc.on_alloc(aligned):
            self.collect()
        return addr

    def free(self, addr: int) -> None:
        """Route a free by the pointer's region membership (§4)."""
        wrapper = self._wrapper
        core = self.core
        core.cycles += wrapper
        self._hw_free_cell.pending += wrapper
        if not self._mrs <= addr < self._mre:
            if addr in self.large.live:
                self._large_frees_cell.pending += 1
                self.large.free(core, addr)
                return
            raise NotAMementoAddressError(
                f"{addr:#x} is neither a Memento object nor a live large "
                f"allocation"
            )
        if self._gc is not None:
            # The GC runtime frees when it collects, not when the object
            # dies (§4's GC integration).
            self._deferred.append(addr)
            return
        self._obj_free(addr)

    def _obj_free(self, addr: int) -> None:
        size = self._sizes.pop(addr, None)
        header = self._header_of(addr)
        self._hw_obj_free(addr, header)
        if header is not None and size is not None:
            self._bypass_on_free(header, addr, (size + 7) & ~7)

    def collect(self) -> int:
        """GC point: flush deferred frees through obj-free (§4)."""
        if self._gc is None:
            return 0
        flushed = 0
        for addr in self._deferred:
            self._obj_free(addr)
            flushed += 1
        self._deferred.clear()
        live_bytes = sum(align8(s) for s in self._sizes.values())
        self._gc.after_gc(live_bytes)
        self.stats.add("gc_flushed_frees", flushed)
        return flushed

    # -- object access (harness hook) --------------------------------------------

    def access_object(self, addr: int, write: bool = True):
        """First-class access path for Memento-allocated data: consult the
        bypass engine; fall back to a regular hierarchy access."""
        header = self.context.object_allocator.header_of(addr)
        if header is not None:
            return self.context.bypass.access(self.core, header, addr, write)
        return self.core.caches.access(addr, write=write)

    def teardown(self) -> None:
        """Function exit: deferred frees are abandoned to the batch path."""
        self._deferred.clear()
        self._sizes.clear()

    @property
    def live_small_objects(self) -> int:
        return len(self._sizes)
