"""Wire schema for the experiment service.

The service speaks the versioned payloads of the declarative request
hierarchy — :meth:`RunRequest.to_dict` / ``from_dict`` for runs and
sweeps, :meth:`FleetRequest.to_dict` / ``from_dict`` for fleet
simulations — all built on the one shared codec in :mod:`repro.codec`
(``schema_version`` stamping, tolerant version-0 readers, newer-version
and unknown-field rejection). One client-side convenience on top: a run
submission may name a registered workload
(``{"workload": "html", "stack": "snapshot"}``, or the legacy boolean
spelling ``{"workload": "html", "memento": true}``) instead of inlining
the full spec, optionally with ``spec_overrides`` (e.g. a smaller
``num_allocs``). Either way the parsed request is the same object the
in-process API builds, so a submission over HTTP hashes to the same
content key — and therefore the same cached result — as the same request
executed directly through the engine.

Malformed submissions raise :class:`WireError`, which the HTTP layer
maps to a 400 response carrying the message.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List

from repro.fleet.request import FleetRequest
from repro.harness.engine import REQUEST_SCHEMA_VERSION, RunRequest
from repro.workloads.registry import get_workload

#: Version of the HTTP envelope (request and response bodies). Tracks
#: the RunRequest payload version — the envelope adds no fields yet.
WIRE_SCHEMA_VERSION = REQUEST_SCHEMA_VERSION


class WireError(ValueError):
    """A submission the wire schema rejects (HTTP 400)."""


def run_request_to_wire(request: RunRequest) -> Dict[str, Any]:
    """The wire form of a request (already versioned)."""
    return request.to_dict()


def run_request_from_wire(payload: Any) -> RunRequest:
    """Parse one submitted run description into a :class:`RunRequest`."""
    if not isinstance(payload, dict):
        raise WireError(
            f"run submission must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    body = dict(payload)
    name = body.pop("workload", None)
    if name is not None:
        if "spec" in body:
            raise WireError("pass either workload or spec, not both")
        overrides = body.pop("spec_overrides", None) or {}
        if not isinstance(overrides, dict):
            raise WireError("spec_overrides must be an object")
        try:
            spec = get_workload(name)
        except KeyError as exc:
            raise WireError(str(exc.args[0] if exc.args else exc))
        try:
            if overrides:
                spec = dataclasses.replace(spec, **overrides)
        except TypeError as exc:
            raise WireError(f"bad spec_overrides: {exc}")
        body["spec"] = dataclasses.asdict(spec)
    try:
        # Version tolerance/rejection is the shared codec's job (see
        # RunRequest.from_dict), not re-implemented here.
        return RunRequest.from_dict(body)
    except (TypeError, ValueError) as exc:
        raise WireError(str(exc))


def run_requests_from_wire(payload: Any) -> List[RunRequest]:
    """Parse a submission body into its request batch.

    A sweep body is ``{"requests": [...]}``; a single-run body is one
    run description. Both parse through :func:`run_request_from_wire`.
    """
    if isinstance(payload, dict) and "requests" in payload:
        items = payload["requests"]
        if not isinstance(items, list) or not items:
            raise WireError("requests must be a non-empty array")
        return [run_request_from_wire(item) for item in items]
    return [run_request_from_wire(payload)]


def fleet_request_to_wire(request: FleetRequest) -> Dict[str, Any]:
    """The wire form of a fleet request (already versioned)."""
    return request.to_dict()


def fleet_request_from_wire(payload: Any) -> FleetRequest:
    """Parse one submitted fleet description into a
    :class:`FleetRequest` — the identical payload the CLI and
    :mod:`repro.api` build, so an HTTP fleet submission shares its
    content key with the same fleet run directly."""
    if not isinstance(payload, dict):
        raise WireError(
            f"fleet submission must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    try:
        return FleetRequest.from_dict(payload)
    except (TypeError, ValueError) as exc:
        raise WireError(str(exc))
