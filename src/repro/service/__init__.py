"""The experiment service: REST API, async job queue, wire schema.

``repro serve`` turns the process-local :class:`ExperimentEngine` into a
long-running service for many concurrent clients: submissions arrive
over HTTP as versioned :class:`RunRequest` wire payloads, queue as jobs
(``queued`` → ``running`` → ``done``/``failed``), drain into the shared
engine (same memo, same result backend, same ledger), and stream back as
:class:`RunResult` payloads bit-identical to in-process execution.
"""

from repro.service.app import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    TRACE_HEADER,
    ExperimentServer,
    ServiceState,
)
from repro.service.client import (
    DEFAULT_SERVICE_URL,
    JobFailed,
    SERVICE_URL_ENV,
    ServiceClient,
    ServiceError,
)
from repro.service.jobs import DEFAULT_WORKERS, JOB_STATES, Job, JobQueue
from repro.service.telemetry import ServiceTelemetry
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    fleet_request_from_wire,
    fleet_request_to_wire,
    run_request_from_wire,
    run_request_to_wire,
    run_requests_from_wire,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_SERVICE_URL",
    "DEFAULT_WORKERS",
    "ExperimentServer",
    "JOB_STATES",
    "Job",
    "JobFailed",
    "JobQueue",
    "SERVICE_URL_ENV",
    "ServiceClient",
    "ServiceError",
    "ServiceState",
    "ServiceTelemetry",
    "TRACE_HEADER",
    "WIRE_SCHEMA_VERSION",
    "WireError",
    "fleet_request_from_wire",
    "fleet_request_to_wire",
    "run_request_from_wire",
    "run_request_to_wire",
    "run_requests_from_wire",
]
