"""Service telemetry: job traces, latency histograms, backend counters.

The service's observability seam. :class:`ServiceTelemetry` hangs off
:class:`~repro.service.app.ServiceState` and observes every job the
queue drains:

* **Traces** — each job gets a synthesized ``job.queued`` span (submit →
  start) and a ``job.run`` span (start → finish) whose children are the
  engine's own span forest, captured on the worker thread via a
  per-thread :class:`~repro.obs.tracing.Tracer`. The submission's
  ``trace_id`` is stamped onto every span, so one id links the client's
  ``client.submit`` span, the queue lifecycle, and the engine phases in
  a JSONL export or Perfetto timeline. A bounded LRU of recent traces
  backs ``GET /api/v1/traces/<id>``.
* **Histograms** — log2 wait/run latency (microseconds), rendered into
  ``/metrics`` as Prometheus histograms.
* **Counters** — completed/failed totals, per-kind totals, folded into
  the service's counter snapshot.

Telemetry observes; it never touches job payloads, so ``RunResult`` and
``FleetResult`` wire dicts are byte-identical with or without it.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.profile import Log2Histogram

#: Traces kept in memory for ``GET /api/v1/traces/<id>`` (LRU-bounded).
DEFAULT_MAX_TRACES = 256


def stamp_trace_id(spans: List[Dict[str, Any]], trace_id: str) -> None:
    """Stamp ``trace_id`` into the attrs of every span in the forest."""
    stack = list(spans)
    while stack:
        span = stack.pop()
        attrs = span.setdefault("attrs", {})
        attrs["trace_id"] = trace_id
        stack.extend(span.get("children", ()))


class ServiceTelemetry:
    """Per-service trace store, latency histograms, and counters."""

    def __init__(
        self,
        path: Optional[Path] = None,
        max_traces: int = DEFAULT_MAX_TRACES,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self.wait_us = Log2Histogram("service.job.wait_us")
        self.run_us = Log2Histogram("service.job.run_us")
        self._counters: Dict[str, float] = {}
        #: trace_id -> span record, insertion order == recency.
        self._traces: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # -- observation (called from queue worker threads) ------------------

    def observe_job(
        self,
        job: Any,
        tracer: Any,
        started_pc: float,
        finished_pc: float,
    ) -> None:
        """Fold one finished job into traces, histograms, and counters.

        ``started_pc``/``finished_pc`` are ``perf_counter`` stamps taken
        on the worker thread; together with the job's ``submitted_pc``
        they synthesize the ``job.queued`` and ``job.run`` spans on the
        same clock the engine's tracer uses, so the timeline exporter
        can rebase them all onto one axis.
        """
        wait_s = max(0.0, started_pc - job.submitted_pc)
        run_s = max(0.0, finished_pc - started_pc)
        run_span: Dict[str, Any] = {
            "name": "job.run",
            "seconds": run_s,
            "start": started_pc,
            "attrs": {
                "job_id": job.id,
                "kind": job.kind,
                "state": job.state,
            },
        }
        children = tracer.to_dict().get("spans", [])
        if children:
            run_span["children"] = children
        spans = [
            {
                "name": "job.queued",
                "seconds": wait_s,
                "start": job.submitted_pc,
                "attrs": {"job_id": job.id, "kind": job.kind},
            },
            run_span,
        ]
        trace_id = getattr(job, "trace_id", None)
        if trace_id:
            stamp_trace_id(spans, trace_id)
        record = {
            "kind": "spans",
            "trace_id": trace_id,
            "job_id": job.id,
            "job_kind": job.kind,
            "state": job.state,
            "wait_s": wait_s,
            "run_s": run_s,
            "spans": spans,
        }
        with self._lock:
            self.wait_us.record(int(wait_s * 1e6))
            self.run_us.record(int(run_s * 1e6))
            self._bump(f"service.jobs.finished.{job.state}")
            self._bump(f"service.jobs.kind.{job.kind}")
            if trace_id:
                self._traces[trace_id] = record
                self._traces.move_to_end(trace_id)
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
        if self.path is not None:
            line = json.dumps(record, sort_keys=True) + "\n"
            with self._lock:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line)

    def count(self, name: str, delta: float = 1) -> None:
        """Bump one named counter (backend ops, retries, ...)."""
        with self._lock:
            self._bump(name, delta)

    def _bump(self, name: str, delta: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + delta

    # -- export ----------------------------------------------------------

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """The stored span record for ``trace_id``, or None."""
        with self._lock:
            return self._traces.get(trace_id)

    def snapshot(self) -> Dict[str, float]:
        """Counter snapshot (copy), for the ``/metrics`` exposition."""
        with self._lock:
            return dict(self._counters)

    def histogram_payloads(self) -> List[Dict[str, Any]]:
        """``Log2Histogram.to_dict`` payloads, for ``/metrics``."""
        with self._lock:
            return [self.wait_us.to_dict(), self.run_us.to_dict()]
