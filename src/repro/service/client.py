"""HTTP client for the experiment service.

The scripting-side counterpart of ``repro serve``: submit a
:class:`RunRequest` (or a wire dict), poll job status, and fetch results
back as live :class:`RunResult` objects — stdlib ``urllib`` only, so the
client rides along with the package everywhere the service does.

::

    from repro.api import RunRequest, ServiceClient, get_workload

    client = ServiceClient("http://127.0.0.1:8023")
    job_id = client.submit(RunRequest(get_workload("html"), memento=True))
    results = client.results(job_id, timeout=300)

``base_url`` falls back to ``REPRO_SERVICE_URL`` then the default bind
of ``repro serve``; the module-level ``submit``/``status``/``result``
helpers build a client per call from that resolution for one-liners.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.fleet.metrics import FleetResult
from repro.fleet.request import FleetRequest
from repro.harness.engine import RunRequest
from repro.harness.system import RunResult
from repro.service.app import DEFAULT_HOST, DEFAULT_PORT

#: Environment variable naming the service the default client targets.
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

DEFAULT_SERVICE_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"


class ServiceError(RuntimeError):
    """A service response the client could not use."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class JobFailed(ServiceError):
    """The submitted job reached the ``failed`` state."""


class ServiceClient:
    """Thin JSON-over-HTTP client for one service instance."""

    def __init__(
        self,
        base_url: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self.base_url = (
            base_url
            or os.environ.get(SERVICE_URL_ENV)
            or DEFAULT_SERVICE_URL
        ).rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Any:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                raw = response.read()
                content_type = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get(
                    "error", ""
                )
            except Exception:  # noqa: BLE001 - best-effort detail
                pass
            raise ServiceError(
                f"{method} {path} failed with HTTP {exc.code}"
                + (f": {detail}" if detail else ""),
                status=exc.code,
            )
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            )
        if content_type.startswith("application/json"):
            return json.loads(raw.decode("utf-8"))
        return raw.decode("utf-8")

    # -- API -------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        return self._request("GET", "/metrics")

    def workloads(self) -> List[str]:
        return self._request("GET", "/api/v1/workloads")["workloads"]

    def submit(
        self, request: Union[RunRequest, Dict[str, Any]]
    ) -> str:
        """Submit one run; returns the job id."""
        body = (
            request.to_dict()
            if isinstance(request, RunRequest)
            else dict(request)
        )
        return self._request("POST", "/api/v1/runs", body)["job_id"]

    def submit_sweep(
        self,
        requests: Sequence[Union[RunRequest, Dict[str, Any]]],
    ) -> str:
        """Submit a request batch as one sweep job; returns the job id."""
        body = {
            "requests": [
                item.to_dict() if isinstance(item, RunRequest) else dict(
                    item
                )
                for item in requests
            ]
        }
        return self._request("POST", "/api/v1/sweeps", body)["job_id"]

    def submit_fleet(
        self, request: Union[FleetRequest, Dict[str, Any]]
    ) -> str:
        """Submit one fleet simulation; returns the job id."""
        body = (
            request.to_dict()
            if isinstance(request, FleetRequest)
            else dict(request)
        )
        return self._request("POST", "/api/v1/fleets", body)["job_id"]

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's state, transitions, and provenance."""
        return self._request("GET", f"/api/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/api/v1/jobs")["jobs"]

    def ledger(self, last: int = 20) -> Dict[str, Any]:
        return self._request("GET", f"/api/v1/ledger?last={last}")

    def results(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> List[RunResult]:
        """Poll until the job finishes; returns its results in order.

        Raises :class:`JobFailed` when the job fails and
        :class:`ServiceError` on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                payload = self._request(
                    "GET", f"/api/v1/jobs/{job_id}/result"
                )
                return [
                    RunResult.from_dict(item)
                    for item in payload["results"]
                ]
            if status["state"] == "failed":
                raise JobFailed(
                    f"job {job_id} failed: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_s)

    def result(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> RunResult:
        """Like :meth:`results` for single-run jobs."""
        results = self.results(job_id, timeout=timeout, poll_s=poll_s)
        if len(results) != 1:
            raise ServiceError(
                f"job {job_id} holds {len(results)} results; "
                "use results()"
            )
        return results[0]

    def fleet_result(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> FleetResult:
        """Poll until a fleet job finishes; returns its platform
        metrics as a live :class:`FleetResult`."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                payload = self._request(
                    "GET", f"/api/v1/jobs/{job_id}/result"
                )
                return FleetResult.from_dict(payload["results"][0])
            if status["state"] == "failed":
                raise JobFailed(
                    f"job {job_id} failed: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_s)


# -- one-liner helpers --------------------------------------------------------


def submit(
    request: Union[RunRequest, Dict[str, Any]],
    base_url: Optional[str] = None,
) -> str:
    """Submit one run against the configured service."""
    return ServiceClient(base_url).submit(request)


def status(job_id: str, base_url: Optional[str] = None) -> Dict[str, Any]:
    """Job status from the configured service."""
    return ServiceClient(base_url).status(job_id)


def result(
    job_id: str,
    base_url: Optional[str] = None,
    timeout: float = 600.0,
) -> RunResult:
    """Block until a single-run job completes; returns its result."""
    return ServiceClient(base_url).result(job_id, timeout=timeout)
