"""HTTP client for the experiment service.

The scripting-side counterpart of ``repro serve``: submit a
:class:`RunRequest` (or a wire dict), poll job status, and fetch results
back as live :class:`RunResult` objects — stdlib ``urllib`` only, so the
client rides along with the package everywhere the service does.

::

    from repro.api import RunRequest, ServiceClient, get_workload

    client = ServiceClient("http://127.0.0.1:8023")
    job_id = client.submit(RunRequest(get_workload("html"), memento=True))
    results = client.results(job_id, timeout=300)

``base_url`` falls back to ``REPRO_SERVICE_URL`` then the default bind
of ``repro serve``; the module-level ``submit``/``status``/``result``
helpers build a client per call from that resolution for one-liners.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.fleet.metrics import FleetResult
from repro.fleet.request import FleetRequest
from repro.harness.engine import RunRequest
from repro.harness.system import RunResult
from repro.obs.tracing import get_tracer
from repro.service.app import DEFAULT_HOST, DEFAULT_PORT, TRACE_HEADER

#: Environment variable naming the service the default client targets.
SERVICE_URL_ENV = "REPRO_SERVICE_URL"

DEFAULT_SERVICE_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"

#: GET retry defaults: idempotent reads survive transient connection
#: loss (a restarting service) with capped exponential backoff.
DEFAULT_RETRIES = 3
DEFAULT_BACKOFF_S = 0.1
MAX_BACKOFF_S = 2.0


class ServiceError(RuntimeError):
    """A service response the client could not use."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class JobFailed(ServiceError):
    """The submitted job reached the ``failed`` state."""


class ServiceClient:
    """Thin JSON-over-HTTP client for one service instance."""

    def __init__(
        self,
        base_url: Optional[str] = None,
        timeout: float = 30.0,
        retries: int = DEFAULT_RETRIES,
        backoff_s: float = DEFAULT_BACKOFF_S,
    ) -> None:
        self.base_url = (
            base_url
            or os.environ.get(SERVICE_URL_ENV)
            or DEFAULT_SERVICE_URL
        ).rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff_s = backoff_s
        #: Trace id of the most recent submission (client- or
        #: server-minted), for scripting a follow-up ``trace()`` call.
        self.last_trace_id: Optional[str] = None
        # Injection seam for tests (connection-failure simulation).
        self._urlopen = urllib.request.urlopen
        self._sleep = time.sleep

    # -- plumbing --------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        # Only idempotent reads retry: re-POSTing a submission after an
        # ambiguous connection error could enqueue the job twice.
        attempts = 1 + (self.retries if method == "GET" else 0)
        for attempt in range(attempts):
            try:
                with self._urlopen(
                    request, timeout=self.timeout
                ) as response:
                    raw = response.read()
                    content_type = response.headers.get(
                        "Content-Type", ""
                    )
                break
            except urllib.error.HTTPError as exc:
                detail = ""
                try:
                    detail = json.loads(exc.read().decode("utf-8")).get(
                        "error", ""
                    )
                except Exception:  # noqa: BLE001 - best-effort detail
                    pass
                raise ServiceError(
                    f"{method} {path} failed with HTTP {exc.code}"
                    + (f": {detail}" if detail else ""),
                    status=exc.code,
                )
            except urllib.error.URLError as exc:
                if attempt + 1 >= attempts:
                    raise ServiceError(
                        f"cannot reach service at {self.base_url}: "
                        f"{exc.reason}"
                    )
                self._sleep(
                    min(MAX_BACKOFF_S, self.backoff_s * (2 ** attempt))
                )
        if content_type.startswith("application/json"):
            return json.loads(raw.decode("utf-8"))
        return raw.decode("utf-8")

    # -- API -------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        return self._request("GET", "/metrics")

    def workloads(self) -> List[str]:
        return self._request("GET", "/api/v1/workloads")["workloads"]

    def _submit_traced(
        self, path: str, body: Dict[str, Any], kind: str,
        trace_id: Optional[str],
    ) -> str:
        """POST a submission under a ``client.submit`` span carrying the
        trace id; the same id goes out in the ``X-Repro-Trace`` header,
        so the client span and the service's job spans share it."""
        trace_id = trace_id or uuid.uuid4().hex[:16]
        self.last_trace_id = trace_id
        with get_tracer().span(
            "client.submit", trace_id=trace_id, kind=kind
        ) as span:
            payload = self._request(
                "POST", path, body, headers={TRACE_HEADER: trace_id}
            )
            span.set("job_id", payload["job_id"])
        return payload["job_id"]

    def submit(
        self,
        request: Union[RunRequest, Dict[str, Any]],
        trace_id: Optional[str] = None,
    ) -> str:
        """Submit one run; returns the job id."""
        body = (
            request.to_dict()
            if isinstance(request, RunRequest)
            else dict(request)
        )
        return self._submit_traced("/api/v1/runs", body, "run", trace_id)

    def submit_sweep(
        self,
        requests: Sequence[Union[RunRequest, Dict[str, Any]]],
        trace_id: Optional[str] = None,
    ) -> str:
        """Submit a request batch as one sweep job; returns the job id."""
        body = {
            "requests": [
                item.to_dict() if isinstance(item, RunRequest) else dict(
                    item
                )
                for item in requests
            ]
        }
        return self._submit_traced(
            "/api/v1/sweeps", body, "sweep", trace_id
        )

    def submit_fleet(
        self,
        request: Union[FleetRequest, Dict[str, Any]],
        trace_id: Optional[str] = None,
    ) -> str:
        """Submit one fleet simulation; returns the job id."""
        body = (
            request.to_dict()
            if isinstance(request, FleetRequest)
            else dict(request)
        )
        return self._submit_traced(
            "/api/v1/fleets", body, "fleet", trace_id
        )

    def trace(self, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """The service's span record for ``trace_id`` (defaults to the
        last submission's id)."""
        trace_id = trace_id or self.last_trace_id
        if not trace_id:
            raise ServiceError("no trace id: submit something first")
        return self._request("GET", f"/api/v1/traces/{trace_id}")

    def status(self, job_id: str) -> Dict[str, Any]:
        """The job's state, transitions, and provenance."""
        return self._request("GET", f"/api/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/api/v1/jobs")["jobs"]

    def ledger(self, last: int = 20) -> Dict[str, Any]:
        return self._request("GET", f"/api/v1/ledger?last={last}")

    def results(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> List[RunResult]:
        """Poll until the job finishes; returns its results in order.

        Raises :class:`JobFailed` when the job fails and
        :class:`ServiceError` on timeout.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                payload = self._request(
                    "GET", f"/api/v1/jobs/{job_id}/result"
                )
                return [
                    RunResult.from_dict(item)
                    for item in payload["results"]
                ]
            if status["state"] == "failed":
                raise JobFailed(
                    f"job {job_id} failed: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_s)

    def result(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> RunResult:
        """Like :meth:`results` for single-run jobs."""
        results = self.results(job_id, timeout=timeout, poll_s=poll_s)
        if len(results) != 1:
            raise ServiceError(
                f"job {job_id} holds {len(results)} results; "
                "use results()"
            )
        return results[0]

    def fleet_result(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_s: float = 0.2,
    ) -> FleetResult:
        """Poll until a fleet job finishes; returns its platform
        metrics as a live :class:`FleetResult`."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                payload = self._request(
                    "GET", f"/api/v1/jobs/{job_id}/result"
                )
                return FleetResult.from_dict(payload["results"][0])
            if status["state"] == "failed":
                raise JobFailed(
                    f"job {job_id} failed: {status.get('error')}"
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:.0f}s"
                )
            time.sleep(poll_s)


# -- one-liner helpers --------------------------------------------------------


def submit(
    request: Union[RunRequest, Dict[str, Any]],
    base_url: Optional[str] = None,
) -> str:
    """Submit one run against the configured service."""
    return ServiceClient(base_url).submit(request)


def status(job_id: str, base_url: Optional[str] = None) -> Dict[str, Any]:
    """Job status from the configured service."""
    return ServiceClient(base_url).status(job_id)


def result(
    job_id: str,
    base_url: Optional[str] = None,
    timeout: float = 600.0,
) -> RunResult:
    """Block until a single-run job completes; returns its result."""
    return ServiceClient(base_url).result(job_id, timeout=timeout)
