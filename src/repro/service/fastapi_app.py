"""Optional FastAPI surface over the same service operations.

FastAPI is *not* a dependency of this package: the stdlib server in
:mod:`repro.service.app` is the supported default, and this module
imports ``fastapi`` lazily so environments without it lose nothing but
this wrapper. When FastAPI (and an ASGI server) are installed, mount
the app for OpenAPI docs, middleware, or an existing deployment
substrate::

    from repro.harness.engine import ExperimentEngine
    from repro.service.app import ServiceState
    from repro.service.fastapi_app import create_fastapi_app

    state = ServiceState(ExperimentEngine())
    app = create_fastapi_app(state)   # uvicorn module:app

Every route delegates to the operation functions the stdlib router
uses, so the two surfaces answer identically.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.service.app import (
    TRACE_HEADER,
    ServiceState,
    op_health,
    op_job_result,
    op_job_status,
    op_jobs,
    op_ledger,
    op_metrics,
    op_submit,
    op_submit_fleet,
    op_trace,
    op_workloads,
)
from repro.service.wire import WireError


def have_fastapi() -> bool:
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def create_fastapi_app(state: ServiceState) -> Any:
    """Build a FastAPI app over ``state``; raises if FastAPI is absent."""
    try:
        from fastapi import FastAPI, Request, Response
    except ImportError as exc:  # pragma: no cover - optional extra
        raise RuntimeError(
            "FastAPI is not installed; use the stdlib server "
            "(repro serve) or `pip install fastapi`"
        ) from exc

    app = FastAPI(title="repro experiment service")

    def _reply(result: tuple) -> Response:
        import json

        status, payload, content_type = result
        body = (
            json.dumps(payload, sort_keys=True)
            if content_type.startswith("application/json")
            else str(payload)
        )
        return Response(
            content=body, status_code=status, media_type=content_type
        )

    @app.get("/healthz")
    def healthz() -> Response:
        return _reply(op_health(state))

    @app.get("/metrics")
    def metrics() -> Response:
        return _reply(op_metrics(state))

    def _trace_id(request: Request) -> Optional[str]:
        return request.headers.get(TRACE_HEADER) or None

    @app.post("/api/v1/runs")
    async def submit_run(request: Request) -> Response:
        return _reply(
            _submit(await request.json(), "run", _trace_id(request))
        )

    @app.post("/api/v1/sweeps")
    async def submit_sweep(request: Request) -> Response:
        return _reply(
            _submit(await request.json(), "sweep", _trace_id(request))
        )

    def _submit(body: Any, kind: str, trace_id: Optional[str]) -> tuple:
        try:
            return op_submit(state, body, kind, trace_id)
        except WireError as exc:
            return 400, {"error": str(exc)}, "application/json"

    @app.post("/api/v1/fleets")
    async def submit_fleet(request: Request) -> Response:
        try:
            result = op_submit_fleet(
                state, await request.json(), _trace_id(request)
            )
        except WireError as exc:
            result = 400, {"error": str(exc)}, "application/json"
        return _reply(result)

    @app.get("/api/v1/traces/{trace_id}")
    def trace(trace_id: str) -> Response:
        return _reply(op_trace(state, trace_id))

    @app.get("/api/v1/jobs")
    def jobs() -> Response:
        return _reply(op_jobs(state))

    @app.get("/api/v1/jobs/{job_id}")
    def job_status(job_id: str) -> Response:
        return _reply(op_job_status(state, job_id))

    @app.get("/api/v1/jobs/{job_id}/result")
    def job_result(job_id: str) -> Response:
        return _reply(op_job_result(state, job_id))

    @app.get("/api/v1/ledger")
    def ledger(last: int = 20) -> Response:
        return _reply(op_ledger(state, last))

    @app.get("/api/v1/workloads")
    def workloads() -> Response:
        return _reply(op_workloads(state))

    return app
