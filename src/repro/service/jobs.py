"""Async job queue draining submissions into the experiment engine.

Every HTTP submission becomes a :class:`Job` — a request batch plus its
lifecycle state (``queued`` → ``running`` → ``done``/``failed``) — on a
FIFO queue that a pool of worker threads drains into one shared
:class:`~repro.harness.engine.ExperimentEngine`. Sharing the engine is
the point of the service: every client's runs land in the same
in-process memo, the same result backend, and the same run ledger, so a
result computed for one client is a cache hit for all. Worker threads
hold no per-thread state; engine internals they touch concurrently (the
memo dict, the atomic-write backends, the lock-guarded ledger) are safe
under the GIL's dict-operation atomicity plus their own locking.

Failures are per-job: a request batch that raises marks only its own job
``failed`` (with the error message) and the worker moves on.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fleet.request import FleetRequest
from repro.fleet.simulate import simulate_fleet
from repro.harness.engine import ExperimentEngine, RunRequest
from repro.obs.tracing import Tracer, set_thread_tracer
from repro.resolve import resolve_workers

#: The job lifecycle; ``done`` and ``failed`` are terminal.
JOB_STATES = ("queued", "running", "done", "failed")

#: Default worker threads draining the queue.
DEFAULT_WORKERS = 2


@dataclass
class Job:
    """One submission's lifecycle, results, and provenance."""

    id: str
    kind: str  # "run" | "sweep" | "fleet"
    requests: List[RunRequest]
    #: Set for ``kind == "fleet"``; ``requests`` stays empty (the engine
    #: shards are derived inside the fleet simulation).
    fleet: Optional[FleetRequest] = None
    state: str = "queued"
    #: Trace-context id minted by the client (or server) at submission;
    #: stamped onto the job's spans so one id links client → HTTP →
    #: queue → engine in the telemetry exports.
    trace_id: Optional[str] = None
    submitted_s: float = field(default_factory=time.time)
    #: ``perf_counter`` at submission — same clock as the engine tracer,
    #: so the synthesized queue spans share the engine spans' axis.
    submitted_pc: float = field(
        default_factory=time.perf_counter, repr=False
    )
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error: Optional[str] = None
    #: Engine content keys, filled when the job completes.
    keys: List[str] = field(default_factory=list)
    #: ``RunResult.to_dict`` payloads in request order (``done`` only).
    results: Optional[List[Dict[str, Any]]] = None
    #: ``(state, unix-time)`` history, for transition assertions.
    transitions: List[Tuple[str, float]] = field(default_factory=list)
    _finished: threading.Event = field(
        default_factory=threading.Event, repr=False
    )

    def __post_init__(self) -> None:
        self.transitions.append((self.state, self.submitted_s))

    def mark(self, state: str) -> None:
        assert state in JOB_STATES, state
        now = time.time()
        self.state = state
        self.transitions.append((state, now))
        if state == "running":
            self.started_s = now
        elif state in ("done", "failed"):
            self.finished_s = now
            self._finished.set()

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job reaches a terminal state."""
        return self._finished.wait(timeout)

    def to_dict(self, include_results: bool = False) -> Dict[str, Any]:
        if self.fleet is not None:
            workloads = list(self.fleet.resolved().workloads)
            stacks = list(self.fleet.stacks)
        else:
            workloads = [req.spec.name for req in self.requests]
            stacks = [req.stack for req in self.requests]
        payload: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "trace_id": self.trace_id,
            "requests": len(self.requests),
            "workloads": workloads,
            "stacks": stacks,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
            "keys": list(self.keys),
            "transitions": [list(step) for step in self.transitions],
        }
        if include_results:
            payload["results"] = self.results
        return payload


class JobQueue:
    """FIFO job queue with a worker-thread pool over one engine."""

    def __init__(
        self,
        engine: ExperimentEngine,
        workers: int = DEFAULT_WORKERS,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.engine = engine
        self.telemetry = telemetry
        self.workers = resolve_workers(workers)
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._shutdown = False
        self._threads = [
            threading.Thread(
                target=self._drain, name=f"repro-job-worker-{i}",
                daemon=True,
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ------------------------------------------------------

    def submit(
        self,
        requests: Sequence[RunRequest],
        kind: str = "run",
        trace_id: Optional[str] = None,
    ) -> Job:
        """Enqueue a request batch; returns the queued :class:`Job`."""
        if not requests:
            raise ValueError("cannot submit an empty request batch")
        with self._lock:
            if self._shutdown:
                raise RuntimeError("job queue is shut down")
            job = Job(
                id=uuid.uuid4().hex[:12],
                kind=kind,
                requests=list(requests),
                trace_id=trace_id,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._queue.put(job)
        return job

    def submit_fleet(
        self, fleet: FleetRequest, trace_id: Optional[str] = None
    ) -> Job:
        """Enqueue one fleet simulation; returns the queued :class:`Job`."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError("job queue is shut down")
            job = Job(
                id=uuid.uuid4().hex[:12],
                kind="fleet",
                requests=[],
                fleet=fleet,
                trace_id=trace_id,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._queue.put(job)
        return job

    # -- inspection ------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every job, submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (all states present, zeros kept)."""
        counts = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            counts[job.state] += 1
        return counts

    def depth(self) -> int:
        """Jobs waiting on the queue (approximate, race-tolerant)."""
        return self._queue.qsize()

    def alive_workers(self) -> int:
        """Worker threads still draining (the ``/healthz`` liveness)."""
        return sum(1 for thread in self._threads if thread.is_alive())

    # -- execution -------------------------------------------------------

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                break
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        # When telemetry is on, the worker traces this job into a
        # private per-thread tracer: engine code asks get_tracer() on
        # this thread and lands its spans here, never in the global
        # tracer another thread (or the test harness) may own.
        job_tracer: Optional[Tracer] = None
        previous: Any = None
        if self.telemetry is not None:
            job_tracer = Tracer()
            previous = set_thread_tracer(job_tracer)
        started_pc = time.perf_counter()
        job.mark("running")
        try:
            if job.fleet is not None:
                fleet_result = simulate_fleet(
                    job.fleet, engine=self.engine
                )
                job.keys = [
                    job.fleet.content_key(self.engine.cost_model)
                ]
                job.results = [fleet_result.to_dict()]
            else:
                results = self.engine.run_many(job.requests)
                job.keys = [
                    request.content_key(self.engine.cost_model)
                    for request in job.requests
                ]
                job.results = [result.to_dict() for result in results]
            job.mark("done")
        except Exception as exc:  # noqa: BLE001 - per-job isolation
            job.error = f"{type(exc).__name__}: {exc}"
            job.mark("failed")
        finally:
            if self.telemetry is not None:
                set_thread_tracer(previous)
                self.telemetry.observe_job(
                    job, job_tracer, started_pc, time.perf_counter()
                )

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; drain workers (joining when ``wait``)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()
