"""The experiment service: a framework-light HTTP API over the engine.

``repro serve`` wraps one shared :class:`ExperimentEngine` in a
:class:`ThreadingHTTPServer` plus a thin method+regex router — no web
framework in the hard dependency set (FastAPI is an optional extra; see
:mod:`repro.service.fastapi_app`). Handlers are small *operation*
functions taking the :class:`ServiceState` and returning
``(status, payload)``; the stdlib handler and the FastAPI wrapper both
dispatch into the same operations, so the two surfaces cannot drift.

Endpoints (all JSON unless noted):

* ``POST /api/v1/runs`` — submit one run; 202 with the job id.
* ``POST /api/v1/sweeps`` — submit ``{"requests": [...]}`` as one job.
* ``POST /api/v1/fleets`` — submit one fleet simulation (a
  ``FleetRequest`` wire payload); 202 with the job id.
* ``GET /api/v1/jobs`` — every job, submission order.
* ``GET /api/v1/jobs/<id>`` — job status and transition history.
* ``GET /api/v1/jobs/<id>/result`` — 200 with results when done, 202
  while queued/running, 500 when failed.
* ``GET /api/v1/traces/<trace_id>`` — span record for one trace id.
* ``GET /api/v1/ledger?last=N`` — the run ledger's newest entries.
* ``GET /api/v1/workloads`` — registered workload names.
* ``GET /healthz`` — liveness plus queue depth and worker liveness
  (503 when a worker thread has died).
* ``GET /metrics`` — engine + service counters and job latency
  histograms, Prometheus text.

Trace propagation: a client sends ``X-Repro-Trace: <id>`` on a
submission (or lets the server mint one); the id is stamped onto the
job and every span it produces, so one id follows the request from the
client's ``client.submit`` span through queue wait and engine phases.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
import uuid
from re import Match, compile as re_compile
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.harness.engine import ExperimentEngine
from repro.obs.metrics import histogram_lines, prometheus_lines
from repro.service.jobs import DEFAULT_WORKERS, JobQueue
from repro.service.telemetry import ServiceTelemetry
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    fleet_request_from_wire,
    run_requests_from_wire,
)
from repro.workloads.registry import all_workloads

#: Default bind address for ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8023

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"

#: Trace-context propagation header: the client mints a trace id and
#: sends it here; the service stamps it onto the job and its spans.
TRACE_HEADER = "X-Repro-Trace"

#: ``(status, payload, content_type)`` — payload is a dict for JSON
#: responses or pre-rendered text otherwise.
Response = Tuple[int, Any, str]


class ServiceState:
    """Everything the operations need: engine, queue, uptime, counters."""

    def __init__(
        self,
        engine: ExperimentEngine,
        workers: int = DEFAULT_WORKERS,
        telemetry: Optional[ServiceTelemetry] = None,
    ) -> None:
        self.engine = engine
        # Always-on (in-memory, bounded): telemetry only observes jobs,
        # never their payloads, so results are identical either way.
        self.telemetry = (
            telemetry if telemetry is not None else ServiceTelemetry()
        )
        self.queue = JobQueue(
            engine, workers=workers, telemetry=self.telemetry
        )
        self.started_s = time.time()
        self._monotonic_start = time.monotonic()
        self.requests_served = 0
        self._lock = threading.Lock()

    def uptime_s(self) -> float:
        return time.monotonic() - self._monotonic_start

    def count_request(self) -> None:
        with self._lock:
            self.requests_served += 1

    def close(self) -> None:
        self.queue.shutdown()


# -- operations ---------------------------------------------------------------


def op_health(state: ServiceState) -> Response:
    """Liveness with teeth: 503 when the worker pool is wedged.

    ``workers_alive < workers`` means at least one drain thread died —
    queued jobs would wait forever — so the Docker HEALTHCHECK (and any
    orchestrator probing ``/healthz``) flips unhealthy instead of
    reporting a green light over a stuck queue.
    """
    disk = state.engine.disk
    alive = state.queue.alive_workers()
    degraded = alive < state.queue.workers
    return (
        503 if degraded else 200,
        {
            "status": "degraded" if degraded else "ok",
            "schema_version": WIRE_SCHEMA_VERSION,
            "uptime_s": state.uptime_s(),
            "backend": disk.kind if disk is not None else "none",
            "workers": state.queue.workers,
            "workers_alive": alive,
            "queue_depth": state.queue.depth(),
            "jobs": state.queue.counts(),
        },
        _JSON,
    )


def op_metrics(state: ServiceState) -> Response:
    """Engine + service counters and latency histograms, Prometheus
    exposition format."""
    counts = state.queue.counts()
    service_counters = {
        "service.uptime_seconds": state.uptime_s(),
        "service.http_requests": state.requests_served,
        "service.queue_depth": state.queue.depth(),
        "service.workers_alive": state.queue.alive_workers(),
        **{
            f"service.jobs.{job_state}": count
            for job_state, count in counts.items()
        },
        **state.telemetry.snapshot(),
    }
    seen: set = set()
    lines: List[str] = []
    lines.extend(
        prometheus_lines(
            service_counters,
            {"component": "service"},
            seen_types=seen,
        )
    )
    lines.extend(
        prometheus_lines(
            # Seed the headline counter so the engine series exists (at
            # zero) before the first run — scrapers see a stable shape.
            {"engine.requests": 0, **state.engine.stats.snapshot()},
            {"component": "engine"},
            seen_types=seen,
        )
    )
    for payload in state.telemetry.histogram_payloads():
        lines.extend(
            histogram_lines(
                payload, {"component": "service"}, seen_types=seen
            )
        )
    return 200, "\n".join(lines) + "\n", _PROM


def op_submit(
    state: ServiceState,
    body: Any,
    kind: str,
    trace_id: Optional[str] = None,
) -> Response:
    requests = run_requests_from_wire(body)
    if kind == "run" and len(requests) != 1:
        raise WireError("POST /api/v1/runs takes exactly one run")
    trace_id = trace_id or uuid.uuid4().hex[:16]
    job = state.queue.submit(requests, kind=kind, trace_id=trace_id)
    return (
        202,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "job_id": job.id,
            "state": job.state,
            "trace_id": trace_id,
            "status_url": f"/api/v1/jobs/{job.id}",
            "result_url": f"/api/v1/jobs/{job.id}/result",
        },
        _JSON,
    )


def op_submit_fleet(
    state: ServiceState, body: Any, trace_id: Optional[str] = None
) -> Response:
    """Submit one fleet simulation; the same payload ``repro fleet run``
    and :func:`repro.api.submit_fleet` build, so the job's content key
    matches a direct run of the identical request."""
    fleet = fleet_request_from_wire(body)
    trace_id = trace_id or uuid.uuid4().hex[:16]
    job = state.queue.submit_fleet(fleet, trace_id=trace_id)
    return (
        202,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "job_id": job.id,
            "state": job.state,
            "trace_id": trace_id,
            "fleet_key": fleet.content_key(state.engine.cost_model),
            "status_url": f"/api/v1/jobs/{job.id}",
            "result_url": f"/api/v1/jobs/{job.id}/result",
        },
        _JSON,
    )


def op_jobs(state: ServiceState) -> Response:
    return (
        200,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "jobs": [job.to_dict() for job in state.queue.jobs()],
        },
        _JSON,
    )


def op_job_status(state: ServiceState, job_id: str) -> Response:
    job = state.queue.get(job_id)
    if job is None:
        return 404, {"error": f"unknown job {job_id!r}"}, _JSON
    payload = job.to_dict()
    payload["schema_version"] = WIRE_SCHEMA_VERSION
    return 200, payload, _JSON


def op_job_result(state: ServiceState, job_id: str) -> Response:
    job = state.queue.get(job_id)
    if job is None:
        return 404, {"error": f"unknown job {job_id!r}"}, _JSON
    if job.state == "failed":
        return (
            500,
            {"error": job.error, "job": job.to_dict()},
            _JSON,
        )
    if not job.finished:
        payload = job.to_dict()
        payload["schema_version"] = WIRE_SCHEMA_VERSION
        return 202, payload, _JSON
    payload = job.to_dict(include_results=True)
    payload["schema_version"] = WIRE_SCHEMA_VERSION
    return 200, payload, _JSON


def op_ledger(state: ServiceState, last: int) -> Response:
    ledger = state.engine.ledger
    if ledger is None:
        return (
            200,
            {"schema_version": WIRE_SCHEMA_VERSION, "entries": [],
             "skipped": 0, "ledger": None},
            _JSON,
        )
    entries, skipped = ledger.read_classified()
    return (
        200,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "ledger": str(ledger.path),
            "entries": entries[-last:],
            "skipped": skipped,
        },
        _JSON,
    )


def op_trace(state: ServiceState, trace_id: str) -> Response:
    """The stored span record for one trace id (bounded LRU store)."""
    record = state.telemetry.trace(trace_id)
    if record is None:
        return 404, {"error": f"unknown trace {trace_id!r}"}, _JSON
    payload = dict(record)
    payload["schema_version"] = WIRE_SCHEMA_VERSION
    return 200, payload, _JSON


def op_workloads(state: ServiceState) -> Response:
    return (
        200,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "workloads": [spec.name for spec in all_workloads()],
        },
        _JSON,
    )


# -- router -------------------------------------------------------------------

#: Route callbacks take ``(state, match, query, body, trace_id)`` —
#: the trace id is the ``X-Repro-Trace`` header value, or None.
RouteFn = Callable[
    [ServiceState, "Match[str]", Dict[str, List[str]], Any, Optional[str]],
    Response,
]


def _route(fn: Callable[..., Response]) -> RouteFn:
    return fn


ROUTES: List[Tuple[str, Any, RouteFn]] = [
    ("GET", re_compile(r"^/healthz$"),
     _route(lambda state, m, q, b, t: op_health(state))),
    ("GET", re_compile(r"^/metrics$"),
     _route(lambda state, m, q, b, t: op_metrics(state))),
    ("POST", re_compile(r"^/api/v1/runs$"),
     _route(lambda state, m, q, b, t: op_submit(state, b, "run", t))),
    ("POST", re_compile(r"^/api/v1/sweeps$"),
     _route(lambda state, m, q, b, t: op_submit(state, b, "sweep", t))),
    ("POST", re_compile(r"^/api/v1/fleets$"),
     _route(lambda state, m, q, b, t: op_submit_fleet(state, b, t))),
    ("GET", re_compile(r"^/api/v1/jobs$"),
     _route(lambda state, m, q, b, t: op_jobs(state))),
    ("GET", re_compile(r"^/api/v1/jobs/(?P<job_id>[0-9a-f]+)$"),
     _route(lambda state, m, q, b, t: op_job_status(state, m["job_id"]))),
    ("GET", re_compile(r"^/api/v1/jobs/(?P<job_id>[0-9a-f]+)/result$"),
     _route(lambda state, m, q, b, t: op_job_result(state, m["job_id"]))),
    ("GET", re_compile(r"^/api/v1/traces/(?P<trace_id>[0-9a-fA-F-]+)$"),
     _route(lambda state, m, q, b, t: op_trace(state, m["trace_id"]))),
    ("GET", re_compile(r"^/api/v1/ledger$"),
     _route(lambda state, m, q, b, t: op_ledger(
         state, int(q.get("last", ["20"])[0])))),
    ("GET", re_compile(r"^/api/v1/workloads$"),
     _route(lambda state, m, q, b, t: op_workloads(state))),
]


class _Handler(BaseHTTPRequestHandler):
    """Dispatches into the route table; all errors become JSON."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> ServiceState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if getattr(self.server, "log_requests", False):
            super().log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self.state.count_request()
        split = urlsplit(self.path)
        query = parse_qs(split.query)
        path_matched = False
        for route_method, pattern, fn in ROUTES:
            match = pattern.match(split.path)
            if match is None:
                continue
            path_matched = True
            if route_method != method:
                continue
            try:
                body = self._read_body() if method == "POST" else None
            except ValueError as exc:
                self._send(400, {"error": str(exc)}, _JSON)
                return
            trace_id = self.headers.get(TRACE_HEADER) or None
            try:
                status, payload, content_type = fn(
                    self.state, match, query, body, trace_id
                )
            except WireError as exc:
                status, payload, content_type = 400, {
                    "error": str(exc)
                }, _JSON
            except (KeyError, ValueError) as exc:
                message = exc.args[0] if exc.args else str(exc)
                status, payload, content_type = 400, {
                    "error": str(message)
                }, _JSON
            except Exception as exc:  # noqa: BLE001 - boundary
                status, payload, content_type = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }, _JSON
            self._send(status, payload, content_type)
            return
        if path_matched:
            self._send(
                405, {"error": f"{method} not allowed here"}, _JSON
            )
        else:
            self._send(
                404, {"error": f"no route for {split.path}"}, _JSON
            )

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body must be JSON")
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")

    def _send(self, status: int, payload: Any, content_type: str) -> None:
        if content_type == _JSON:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
        else:
            data = str(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class ExperimentServer:
    """The bound HTTP server plus its service state.

    ``port=0`` binds an ephemeral port (tests); the bound port is on
    ``.port``. ``start()`` serves from a background thread; ``stop()``
    is idempotent and also drains the job queue — the clean-shutdown
    path ``repro serve`` runs on SIGINT/SIGTERM.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        engine: Optional[ExperimentEngine] = None,
        workers: int = DEFAULT_WORKERS,
        log_requests: bool = False,
        telemetry_path: Optional[Any] = None,
    ) -> None:
        telemetry = (
            ServiceTelemetry(path=telemetry_path)
            if telemetry_path is not None
            else None
        )
        self.state = ServiceState(
            engine or ExperimentEngine(),
            workers=workers,
            telemetry=telemetry,
        )
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.state = self.state  # type: ignore[attr-defined]
        self._http.log_requests = log_requests  # type: ignore[attr-defined]
        self.host, self.port = self._http.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self._http.serve_forever()

    def start(self) -> "ExperimentServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.state.close()

    def __enter__(self) -> "ExperimentServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
