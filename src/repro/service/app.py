"""The experiment service: a framework-light HTTP API over the engine.

``repro serve`` wraps one shared :class:`ExperimentEngine` in a
:class:`ThreadingHTTPServer` plus a thin method+regex router — no web
framework in the hard dependency set (FastAPI is an optional extra; see
:mod:`repro.service.fastapi_app`). Handlers are small *operation*
functions taking the :class:`ServiceState` and returning
``(status, payload)``; the stdlib handler and the FastAPI wrapper both
dispatch into the same operations, so the two surfaces cannot drift.

Endpoints (all JSON unless noted):

* ``POST /api/v1/runs`` — submit one run; 202 with the job id.
* ``POST /api/v1/sweeps`` — submit ``{"requests": [...]}`` as one job.
* ``POST /api/v1/fleets`` — submit one fleet simulation (a
  ``FleetRequest`` wire payload); 202 with the job id.
* ``GET /api/v1/jobs`` — every job, submission order.
* ``GET /api/v1/jobs/<id>`` — job status and transition history.
* ``GET /api/v1/jobs/<id>/result`` — 200 with results when done, 202
  while queued/running, 500 when failed.
* ``GET /api/v1/ledger?last=N`` — the run ledger's newest entries.
* ``GET /api/v1/workloads`` — registered workload names.
* ``GET /healthz`` — liveness plus queue/backend summary.
* ``GET /metrics`` — engine + service counters, Prometheus text.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from re import Match, compile as re_compile
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.harness.engine import ExperimentEngine
from repro.obs.metrics import render_prometheus
from repro.service.jobs import DEFAULT_WORKERS, JobQueue
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    fleet_request_from_wire,
    run_requests_from_wire,
)
from repro.workloads.registry import all_workloads

#: Default bind address for ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8023

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"

#: ``(status, payload, content_type)`` — payload is a dict for JSON
#: responses or pre-rendered text otherwise.
Response = Tuple[int, Any, str]


class ServiceState:
    """Everything the operations need: engine, queue, uptime, counters."""

    def __init__(
        self,
        engine: ExperimentEngine,
        workers: int = DEFAULT_WORKERS,
    ) -> None:
        self.engine = engine
        self.queue = JobQueue(engine, workers=workers)
        self.started_s = time.time()
        self._monotonic_start = time.monotonic()
        self.requests_served = 0
        self._lock = threading.Lock()

    def uptime_s(self) -> float:
        return time.monotonic() - self._monotonic_start

    def count_request(self) -> None:
        with self._lock:
            self.requests_served += 1

    def close(self) -> None:
        self.queue.shutdown()


# -- operations ---------------------------------------------------------------


def op_health(state: ServiceState) -> Response:
    disk = state.engine.disk
    return (
        200,
        {
            "status": "ok",
            "schema_version": WIRE_SCHEMA_VERSION,
            "uptime_s": state.uptime_s(),
            "backend": disk.kind if disk is not None else "none",
            "workers": state.queue.workers,
            "jobs": state.queue.counts(),
        },
        _JSON,
    )


def op_metrics(state: ServiceState) -> Response:
    """Engine + service counters in Prometheus exposition format."""
    counts = state.queue.counts()
    service_counters = {
        "service.uptime_seconds": state.uptime_s(),
        "service.http_requests": state.requests_served,
        **{
            f"service.jobs.{job_state}": count
            for job_state, count in counts.items()
        },
    }
    snapshots = [
        {"labels": {"component": "service"}, "counters": service_counters},
        {
            "labels": {"component": "engine"},
            # Seed the headline counter so the engine series exists (at
            # zero) before the first run — scrapers see a stable shape.
            "counters": {
                "engine.requests": 0,
                **state.engine.stats.snapshot(),
            },
        },
    ]
    return 200, render_prometheus(snapshots), _PROM


def op_submit(state: ServiceState, body: Any, kind: str) -> Response:
    requests = run_requests_from_wire(body)
    if kind == "run" and len(requests) != 1:
        raise WireError("POST /api/v1/runs takes exactly one run")
    job = state.queue.submit(requests, kind=kind)
    return (
        202,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "job_id": job.id,
            "state": job.state,
            "status_url": f"/api/v1/jobs/{job.id}",
            "result_url": f"/api/v1/jobs/{job.id}/result",
        },
        _JSON,
    )


def op_submit_fleet(state: ServiceState, body: Any) -> Response:
    """Submit one fleet simulation; the same payload ``repro fleet run``
    and :func:`repro.api.submit_fleet` build, so the job's content key
    matches a direct run of the identical request."""
    fleet = fleet_request_from_wire(body)
    job = state.queue.submit_fleet(fleet)
    return (
        202,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "job_id": job.id,
            "state": job.state,
            "fleet_key": fleet.content_key(state.engine.cost_model),
            "status_url": f"/api/v1/jobs/{job.id}",
            "result_url": f"/api/v1/jobs/{job.id}/result",
        },
        _JSON,
    )


def op_jobs(state: ServiceState) -> Response:
    return (
        200,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "jobs": [job.to_dict() for job in state.queue.jobs()],
        },
        _JSON,
    )


def op_job_status(state: ServiceState, job_id: str) -> Response:
    job = state.queue.get(job_id)
    if job is None:
        return 404, {"error": f"unknown job {job_id!r}"}, _JSON
    payload = job.to_dict()
    payload["schema_version"] = WIRE_SCHEMA_VERSION
    return 200, payload, _JSON


def op_job_result(state: ServiceState, job_id: str) -> Response:
    job = state.queue.get(job_id)
    if job is None:
        return 404, {"error": f"unknown job {job_id!r}"}, _JSON
    if job.state == "failed":
        return (
            500,
            {"error": job.error, "job": job.to_dict()},
            _JSON,
        )
    if not job.finished:
        payload = job.to_dict()
        payload["schema_version"] = WIRE_SCHEMA_VERSION
        return 202, payload, _JSON
    payload = job.to_dict(include_results=True)
    payload["schema_version"] = WIRE_SCHEMA_VERSION
    return 200, payload, _JSON


def op_ledger(state: ServiceState, last: int) -> Response:
    ledger = state.engine.ledger
    if ledger is None:
        return (
            200,
            {"schema_version": WIRE_SCHEMA_VERSION, "entries": [],
             "skipped": 0, "ledger": None},
            _JSON,
        )
    entries, skipped = ledger.read_classified()
    return (
        200,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "ledger": str(ledger.path),
            "entries": entries[-last:],
            "skipped": skipped,
        },
        _JSON,
    )


def op_workloads(state: ServiceState) -> Response:
    return (
        200,
        {
            "schema_version": WIRE_SCHEMA_VERSION,
            "workloads": [spec.name for spec in all_workloads()],
        },
        _JSON,
    )


# -- router -------------------------------------------------------------------

RouteFn = Callable[[ServiceState, "Match[str]", Dict[str, List[str]], Any],
                   Response]


def _route(fn: Callable[..., Response]) -> RouteFn:
    return fn


ROUTES: List[Tuple[str, Any, RouteFn]] = [
    ("GET", re_compile(r"^/healthz$"),
     _route(lambda state, m, q, b: op_health(state))),
    ("GET", re_compile(r"^/metrics$"),
     _route(lambda state, m, q, b: op_metrics(state))),
    ("POST", re_compile(r"^/api/v1/runs$"),
     _route(lambda state, m, q, b: op_submit(state, b, "run"))),
    ("POST", re_compile(r"^/api/v1/sweeps$"),
     _route(lambda state, m, q, b: op_submit(state, b, "sweep"))),
    ("POST", re_compile(r"^/api/v1/fleets$"),
     _route(lambda state, m, q, b: op_submit_fleet(state, b))),
    ("GET", re_compile(r"^/api/v1/jobs$"),
     _route(lambda state, m, q, b: op_jobs(state))),
    ("GET", re_compile(r"^/api/v1/jobs/(?P<job_id>[0-9a-f]+)$"),
     _route(lambda state, m, q, b: op_job_status(state, m["job_id"]))),
    ("GET", re_compile(r"^/api/v1/jobs/(?P<job_id>[0-9a-f]+)/result$"),
     _route(lambda state, m, q, b: op_job_result(state, m["job_id"]))),
    ("GET", re_compile(r"^/api/v1/ledger$"),
     _route(lambda state, m, q, b: op_ledger(
         state, int(q.get("last", ["20"])[0])))),
    ("GET", re_compile(r"^/api/v1/workloads$"),
     _route(lambda state, m, q, b: op_workloads(state))),
]


class _Handler(BaseHTTPRequestHandler):
    """Dispatches into the route table; all errors become JSON."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def state(self) -> ServiceState:
        return self.server.state  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        if getattr(self.server, "log_requests", False):
            super().log_message(fmt, *args)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self.state.count_request()
        split = urlsplit(self.path)
        query = parse_qs(split.query)
        path_matched = False
        for route_method, pattern, fn in ROUTES:
            match = pattern.match(split.path)
            if match is None:
                continue
            path_matched = True
            if route_method != method:
                continue
            try:
                body = self._read_body() if method == "POST" else None
            except ValueError as exc:
                self._send(400, {"error": str(exc)}, _JSON)
                return
            try:
                status, payload, content_type = fn(
                    self.state, match, query, body
                )
            except WireError as exc:
                status, payload, content_type = 400, {
                    "error": str(exc)
                }, _JSON
            except (KeyError, ValueError) as exc:
                message = exc.args[0] if exc.args else str(exc)
                status, payload, content_type = 400, {
                    "error": str(message)
                }, _JSON
            except Exception as exc:  # noqa: BLE001 - boundary
                status, payload, content_type = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }, _JSON
            self._send(status, payload, content_type)
            return
        if path_matched:
            self._send(
                405, {"error": f"{method} not allowed here"}, _JSON
            )
        else:
            self._send(
                404, {"error": f"no route for {split.path}"}, _JSON
            )

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("request body must be JSON")
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")

    def _send(self, status: int, payload: Any, content_type: str) -> None:
        if content_type == _JSON:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
        else:
            data = str(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class ExperimentServer:
    """The bound HTTP server plus its service state.

    ``port=0`` binds an ephemeral port (tests); the bound port is on
    ``.port``. ``start()`` serves from a background thread; ``stop()``
    is idempotent and also drains the job queue — the clean-shutdown
    path ``repro serve`` runs on SIGINT/SIGTERM.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        engine: Optional[ExperimentEngine] = None,
        workers: int = DEFAULT_WORKERS,
        log_requests: bool = False,
    ) -> None:
        self.state = ServiceState(
            engine or ExperimentEngine(), workers=workers
        )
        self._http = ThreadingHTTPServer((host, port), _Handler)
        self._http.daemon_threads = True
        self._http.state = self.state  # type: ignore[attr-defined]
        self._http.log_requests = log_requests  # type: ignore[attr-defined]
        self.host, self.port = self._http.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        self._http.serve_forever()

    def start(self) -> "ExperimentServer":
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self._http.shutdown()
        self._http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.state.close()

    def __enter__(self) -> "ExperimentServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
