"""The run ledger and the performance-regression gate.

Every engine execution appends one manifest line to
``.repro-cache/ledger.jsonl``: content key, source and cost-model
fingerprints, workload/stack, wall time, simulated totals, and a digest
of the full counter snapshot. The ledger is the flight recorder the
result cache lacks — the cache holds only the *latest* artifact per key,
while the ledger keeps the append-only history of what ran, when, from
which source (live, disk, memo), and how long it took, so silent perf or
correctness drift across PRs is visible after the fact.

``repro obs check`` closes the loop: it compares a fresh
``BENCH_*.json`` payload against the committed baseline and fails when
any replay key regresses by more than the threshold (report-only in
``--smoke`` mode, where CI timing noise drowns real signal).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

SCHEMA_VERSION = 1

#: Ledger file name inside the engine's cache directory.
LEDGER_NAME = "ledger.jsonl"

#: Default regression threshold (percent events/sec loss) for ``check``.
DEFAULT_THRESHOLD_PCT = 10.0


def default_ledger_path(cache_dir) -> Path:
    return Path(cache_dir) / LEDGER_NAME


def counter_digest(counters: Mapping[str, float]) -> str:
    """Order-independent 16-hex digest of a counter snapshot.

    Two runs with identical counters — the simulator is deterministic —
    produce identical digests, so a digest mismatch between ledger lines
    for the same content key is a correctness regression, not noise.
    """
    blob = json.dumps(
        {str(k): counters[k] for k in sorted(counters)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def payload_digest(payload: Any) -> str:
    """Order-independent 16-hex digest of any JSON-serializable payload.

    The fleet-level determinism canary: :func:`fleet_manifest` stamps the
    digest of the full ``FleetResult`` wire dict, so two ledger lines for
    the same fleet key with different digests mean the seeded simulation
    stopped being bit-identical.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def manifest(
    key: str,
    workload: str,
    stack: str,
    source: str,
    elapsed_s: float,
    result_summary: Mapping[str, Any],
    fingerprints: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Assemble one ledger line for an engine execution."""
    return {
        # ``schema_version`` is the explicit field; ``schema`` stays so
        # version-0 readers keep accepting (or cleanly skipping) lines.
        "schema_version": SCHEMA_VERSION,
        "schema": SCHEMA_VERSION,
        "ts": time.time(),
        "key": key,
        "workload": workload,
        "stack": stack,
        "source": source,
        "elapsed_s": elapsed_s,
        "total_cycles": result_summary.get("total_cycles"),
        "dram_bytes": result_summary.get("dram_bytes"),
        "counter_digest": counter_digest(result_summary.get("stats", {})),
        "fingerprints": dict(fingerprints or {}),
    }


def fleet_manifest(
    fleet_key: str,
    scenario: str,
    seed: int,
    invocations: int,
    duration_s: float,
    elapsed_s: float,
    stacks: Mapping[str, Mapping[str, Any]],
    metrics_digest: str,
    fingerprints: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Assemble one ledger line for a fleet execution.

    ``kind: "fleet"`` discriminates these lines from run manifests;
    ``key`` holds the fleet content key (which folds the source and
    cost-model fingerprints, so it changes whenever the code does) while
    ``scenario`` digests only the declarative request — the stable
    grouping the fleet trend gates ride across source versions.
    ``stacks`` carries the per-stack headline numbers the gates compare
    (cold-start p95, stranded GB·s) and ``metrics_digest`` is the
    determinism canary over the full :class:`FleetResult` payload.
    """
    return {
        "schema_version": SCHEMA_VERSION,
        "schema": SCHEMA_VERSION,
        "kind": "fleet",
        "ts": time.time(),
        "key": fleet_key,
        "fleet_key": fleet_key,
        "scenario": scenario,
        "seed": seed,
        "invocations": invocations,
        "duration_s": duration_s,
        "elapsed_s": elapsed_s,
        "source": "fleet",
        "stacks": {
            name: dict(summary) for name, summary in stacks.items()
        },
        "metrics_digest": metrics_digest,
        "fingerprints": dict(fingerprints or {}),
    }


def split_fleet_entries(
    entries: List[Dict[str, Any]],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """``(run_entries, fleet_entries)`` — classify ledger lines by kind.

    Run manifests predate the ``kind`` field, so anything without
    ``kind: "fleet"`` is a run line.
    """
    runs = [e for e in entries if e.get("kind") != "fleet"]
    fleets = [e for e in entries if e.get("kind") == "fleet"]
    return runs, fleets


class RunLedger:
    """Append-only JSONL manifest log (one line per engine execution)."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        # Appends are serialized per ledger object: the service's worker
        # threads share one engine (hence one ledger), and interleaved
        # writes must never tear a JSONL line.
        self._lock = threading.Lock()

    def append(self, entry: Mapping[str, Any]) -> None:
        """Append one manifest line (creating parents on first write)."""
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)

    def read(self) -> List[Dict[str, Any]]:
        """Every parseable manifest, oldest first (corrupt lines skipped)."""
        return self.read_classified()[0]

    def read_classified(self) -> Tuple[List[Dict[str, Any]], int]:
        """``(entries, skipped)`` — manifests plus the unusable-line count.

        A line is skipped when it is not JSON, not an object, lacks the
        ``key`` field (pre-manifest experiments wrote bare summaries), or
        declares a version newer than this reader understands
        (``schema_version``, or the version-0 spelling ``schema``). Old
        lines *without* either field are accepted as version 1 — the
        ledger is append-only and must keep reading its own history.
        """
        entries: List[Dict[str, Any]] = []
        skipped = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return entries, skipped
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(entry, dict) or "key" not in entry:
                skipped += 1
                continue
            schema = entry.get("schema_version", entry.get("schema", 1))
            if not isinstance(schema, int) or schema > SCHEMA_VERSION:
                skipped += 1
                continue
            entries.append(entry)
        return entries, skipped

    def tail(self, count: int) -> List[Dict[str, Any]]:
        return self.read()[-count:]

    def digests_by_key(self) -> Dict[str, List[str]]:
        """Distinct counter digests seen per content key, oldest first.

        A key with more than one digest means two executions of the same
        request disagreed — the determinism canary.
        """
        seen: Dict[str, List[str]] = {}
        for entry in self.read():
            digest = entry.get("counter_digest")
            if not digest:
                continue
            bucket = seen.setdefault(entry["key"], [])
            if digest not in bucket:
                bucket.append(digest)
        return seen


# -- the regression gate ------------------------------------------------------


def check_bench(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> Dict[str, Any]:
    """Compare two ``BENCH_*.json`` payloads key by key.

    Returns ``{"ok": bool, "threshold_pct": ..., "rows": [...]}`` where a
    row carries the per-key events/sec of both sides, the ratio, and
    whether it breaches the threshold. Keys missing on either side are
    reported but never fail the gate (workload sets may legitimately
    differ between bench invocations).
    """
    cur_replay = current.get("replay", current)
    base_replay = baseline.get("replay", baseline)
    rows: List[Dict[str, Any]] = []
    ok = True
    for key in sorted(set(cur_replay) | set(base_replay)):
        cur = cur_replay.get(key, {}).get("events_per_sec")
        base = base_replay.get(key, {}).get("events_per_sec")
        if not cur or not base:
            rows.append(
                {"key": key, "current": cur, "baseline": base,
                 "ratio": None, "regressed": False}
            )
            continue
        ratio = cur / base
        regressed = ratio < 1.0 - threshold_pct / 100.0
        ok = ok and not regressed
        rows.append(
            {"key": key, "current": cur, "baseline": base,
             "ratio": ratio, "regressed": regressed}
        )
    return {"ok": ok, "threshold_pct": threshold_pct, "rows": rows}


def check_ledger_determinism(ledger: RunLedger) -> Dict[str, Any]:
    """Flag content keys whose ledger history shows >1 counter digest."""
    conflicts = {
        key: digests
        for key, digests in ledger.digests_by_key().items()
        if len(digests) > 1
    }
    return {"ok": not conflicts, "conflicts": conflicts}
