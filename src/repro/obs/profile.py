"""Simulated-cycle attribution profiler and per-op latency histograms.

Where :mod:`repro.obs.tracing` answers "where did the *wall clock* go?",
this module answers the paper's own question: *where did the simulated
cycles go?* — 2-cycle HOT hits, 1-cycle AAC hits, four-digit kernel
fault paths, bypass instantiations (PAPER.md §3, §6.4, Fig. 9).

Design mirrors :mod:`repro.obs.events`: a process-wide
:class:`CycleProfile` is installed (or not) *before* the system under
study is constructed. Components bind the installed profile's interned
:class:`ProfileCell` / :class:`Log2Histogram` handles at construction
time; when no profile is installed they bind ``None`` and every emit
site is a single attribute ``is None`` test on a method-level (never
per-line) path, or is compiled out entirely by the closure factories.
The disabled replay loop is byte-identical to the uninstrumented one.

Attribution is exact, not approximate. Every ``core.cycles`` bump in the
simulator is paired with a ``cycles.<category>`` Stats counter bump
(DESIGN.md §12), so per-category totals partition the grand total. The
profiler instruments the *interesting* sites inside each category
(HOT hit/miss, AAC hit/miss, page walks, TLB shootdowns, kernel faults,
software-allocator slow paths, ...) and :meth:`CycleProfile.finish_run`
assigns each category's residual — cycles the category charged outside
any instrumented site — to a named residual component. Components
therefore sum to ``total_cycles`` exactly; the acceptance bound of "within
1%" holds with zero slack.

Two component names double as residual sinks: the software allocators
inline their fast paths into replay closures (PR 2), so those cycles are
deliberately *not* instrumented per call — they surface as the
``user_alloc``/``user_free`` residual and are folded into
``swalloc.alloc_fast`` / ``swalloc.free_fast``, which is exactly what
they are.

Cells whose name has no ``COMPONENT_CATEGORY`` entry are *overlays*:
cross-cutting tallies (e.g. ``dram.access``, charged by several
categories) reported alongside the breakdown but excluded from the
category reconciliation so nothing is double counted.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

SCHEMA_VERSION = 1

#: Instrumented component -> cycle category (``cycles.<category>`` Stats
#: counter) it charges into. One category per component; reconciliation
#: depends on this partition.
COMPONENT_CATEGORY: Dict[str, str] = {
    "hot.alloc_hit": "hw_alloc",
    "hot.alloc_miss": "hw_alloc",
    "hot.free_hit": "hw_free",
    "hot.free_miss": "hw_free",
    "aac.hit": "hw_page",
    "aac.miss": "hw_page",
    "hw_page.fill": "hw_page",
    "hw_page.arena_free": "hw_page",
    "tlb.shootdown": "hw_page",
    "walk.page_walk": "walk",
    "kernel.fault": "kernel_page",
    "kernel.pool_replenish": "kernel_page",
    "kernel.switch": "kernel_other",
    "swalloc.alloc_fast": "user_alloc",
    "swalloc.alloc_slow": "user_alloc",
    "swalloc.free_fast": "user_free",
    "swalloc.free_slow": "user_free",
    "touch.bypass_instantiate": "touch",
}

#: Category -> component name its residual (un-instrumented) cycles are
#: attributed to. When the name is also an instrumented component the
#: residual folds into it (the software-allocator fast paths are inlined
#: in replay closures, so their cycles arrive as category residual).
CATEGORY_RESIDUAL: Dict[str, str] = {
    "app": "app.compute",
    "touch": "touch.demand_lines",
    "walk": "walk.other",
    "hw_alloc": "hw_alloc.wrapper",
    "hw_free": "hw_free.wrapper",
    "hw_page": "hw_page.other",
    "kernel_page": "kernel.page_other",
    "kernel_other": "kernel.other",
    "mem_backpressure": "dram.backpressure",
    "user_alloc": "swalloc.alloc_fast",
    "user_free": "swalloc.free_fast",
}


class ProfileCell:
    """One interned attribution bucket: occurrence count + cycle total.

    Hot sites bind the cell once at construction and call :meth:`add`
    (or bump the slots directly) only when a profile is installed.
    """

    __slots__ = ("name", "count", "cycles")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.cycles = 0

    def add(self, cycles: int) -> None:
        self.count += 1
        self.cycles += cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProfileCell({self.name!r}, n={self.count}, cyc={self.cycles})"


class Log2Histogram:
    """Fixed-bucket log2 histogram of per-op simulated-cycle costs.

    Bucket ``i`` holds values with ``value.bit_length() == i`` — i.e. the
    half-open power-of-two range ``[2**(i-1), 2**i)`` — so bucket upper
    bounds are ``2**i - 1``. Values beyond the last bucket clamp into it.
    Memory is constant regardless of sample count.
    """

    __slots__ = ("name", "buckets", "count", "total")

    N_BUCKETS = 24  # values 0 .. 2**23-1 resolved; larger clamp to last

    def __init__(self, name: str) -> None:
        self.name = name
        self.buckets = [0] * self.N_BUCKETS
        self.count = 0
        self.total = 0

    def record(self, value: int) -> None:
        idx = value.bit_length() if value > 0 else 0
        if idx >= self.N_BUCKETS:
            idx = self.N_BUCKETS - 1
        self.buckets[idx] += 1
        self.count += 1
        self.total += value

    def upper_bounds(self) -> List[int]:
        """Inclusive ``le`` upper bound per bucket (last is unbounded)."""
        return [(1 << i) - 1 for i in range(self.N_BUCKETS)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "buckets": list(self.buckets),
            "upper_bounds": self.upper_bounds(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Log2Histogram":
        hist = cls(str(payload.get("name", "")))
        buckets = list(payload.get("buckets", ()))[: cls.N_BUCKETS]
        hist.buckets[: len(buckets)] = [int(b) for b in buckets]
        hist.count = int(payload.get("count", sum(hist.buckets)))
        hist.total = int(payload.get("total", 0))
        return hist


class CycleProfile:
    """Process-wide accumulator of cycle attribution and op histograms.

    Install one with :func:`install_profile` *before* constructing the
    :class:`~repro.harness.system.SimulatedSystem` whose cycles you want
    attributed; the system takes a :meth:`checkpoint` at construction and
    calls :meth:`finish_run` after its stats fold, which reconciles the
    interned cell deltas against the run's per-category cycle totals and
    appends one entry to :attr:`runs`.

    The profiler only ever *reads* simulated state — it never charges
    cycles — so enabling it cannot perturb results: the RunResult (and
    its sha256 counter digest) is identical with the profiler on or off.
    """

    def __init__(self) -> None:
        self.cells: Dict[str, ProfileCell] = {}
        self.hists: Dict[str, Log2Histogram] = {}
        self.runs: List[Dict[str, Any]] = []

    # -- interning ------------------------------------------------------

    def cell(self, name: str) -> ProfileCell:
        """The interned cell for ``name`` (created on first use)."""
        cell = self.cells.get(name)
        if cell is None:
            cell = self.cells[name] = ProfileCell(name)
        return cell

    def hist(self, name: str) -> Log2Histogram:
        """The interned histogram for ``name`` (created on first use)."""
        hist = self.hists.get(name)
        if hist is None:
            hist = self.hists[name] = Log2Histogram(name)
        return hist

    # -- per-run attribution --------------------------------------------

    def checkpoint(self) -> Dict[str, Tuple[int, int]]:
        """Snapshot of every cell's (count, cycles), for run deltas."""
        return {
            name: (cell.count, cell.cycles)
            for name, cell in self.cells.items()
        }

    def finish_run(
        self,
        workload: str,
        stack: str,
        categories: Mapping[str, int],
        total_cycles: int,
        checkpoint: Optional[Mapping[str, Tuple[int, int]]] = None,
        derived: Optional[Mapping[str, Tuple[int, int]]] = None,
        phases: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, Any]:
        """Reconcile cell deltas against category totals; record one run.

        ``categories`` maps category name -> cycles charged under
        ``cycles.<category>`` during the run. ``derived`` supplies
        components computed analytically rather than via a cell (e.g.
        ``touch.bypass_instantiate`` = bypassed lines x bypass cost) as
        ``name -> (count, cycles)``. Residual cycles per category land on
        :data:`CATEGORY_RESIDUAL` components, so component cycles sum to
        ``sum(categories.values())`` exactly.
        """
        base = checkpoint or {}
        components: Dict[str, Dict[str, int]] = {}
        overlays: Dict[str, Dict[str, int]] = {}
        attributed: Dict[str, int] = {}
        for name, cell in self.cells.items():
            b_count, b_cycles = base.get(name, (0, 0))
            d_count = cell.count - b_count
            d_cycles = cell.cycles - b_cycles
            if d_count == 0 and d_cycles == 0:
                continue
            row = {"count": d_count, "cycles": d_cycles}
            category = COMPONENT_CATEGORY.get(name)
            if category is None:
                overlays[name] = row
            else:
                components[name] = row
                attributed[category] = attributed.get(category, 0) + d_cycles
        for name, (d_count, d_cycles) in (derived or {}).items():
            if d_count == 0 and d_cycles == 0:
                continue
            category = COMPONENT_CATEGORY.get(name)
            row = components.setdefault(name, {"count": 0, "cycles": 0})
            row["count"] += d_count
            row["cycles"] += d_cycles
            if category is not None:
                attributed[category] = attributed.get(category, 0) + d_cycles
        for category, total in categories.items():
            residual = int(total) - attributed.get(category, 0)
            if residual == 0:
                continue
            name = CATEGORY_RESIDUAL.get(category, f"{category}.other")
            row = components.setdefault(name, {"count": 0, "cycles": 0})
            row["cycles"] += residual
        attributed_total = sum(row["cycles"] for row in components.values())
        entry = {
            "workload": workload,
            "stack": stack,
            "total_cycles": int(total_cycles),
            "attributed_cycles": attributed_total,
            "unattributed_cycles": int(total_cycles) - attributed_total,
            "categories": {k: int(v) for k, v in sorted(categories.items())},
            "components": {k: components[k] for k in sorted(components)},
        }
        if overlays:
            entry["overlays"] = {k: overlays[k] for k in sorted(overlays)}
        if phases:
            entry["phases"] = {k: int(v) for k, v in sorted(phases.items())}
        self.runs.append(entry)
        return entry

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (metrics sidecar / CI artifact payload)."""
        return {
            "schema": SCHEMA_VERSION,
            "runs": [dict(run) for run in self.runs],
            "histograms": {
                name: self.hists[name].to_dict()
                for name in sorted(self.hists)
            },
        }

    def clear(self) -> None:
        self.cells = {}
        self.hists = {}
        self.runs = []


#: The installed profile, or None (the default: attribution disabled).
PROFILE: Optional[CycleProfile] = None


def get_profile() -> Optional[CycleProfile]:
    """The installed profile, or None when cycle attribution is off."""
    return PROFILE


def install_profile(profile: Optional[CycleProfile]) -> Optional[CycleProfile]:
    """Install (or, with None, remove) the process-wide cycle profile.

    Returns the previously installed profile. Systems bind the profile's
    cells at construction, so install it before building the system.
    """
    global PROFILE
    previous = PROFILE
    PROFILE = profile
    return previous


# -- rendering ----------------------------------------------------------------


def _bar(fraction: float, width: int = 30) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_profile(payload: Mapping[str, Any]) -> str:
    """Fig. 9-style ASCII cycle breakdown, one block per recorded run.

    Components are grouped under their cycle category; each line shows
    cycles, share of the run total, occurrence count, and a bar scaled to
    the largest component in the run.
    """
    lines: List[str] = []
    runs = payload.get("runs", [])
    if not runs:
        return "(no profiled runs)"
    by_category: Dict[str, str] = dict(COMPONENT_CATEGORY)
    for category, name in CATEGORY_RESIDUAL.items():
        by_category.setdefault(name, category)
    for run in runs:
        total = run.get("total_cycles") or 0
        lines.append(
            f"{run.get('workload', '?')} [{run.get('stack', '?')}]  "
            f"total {total:,} cycles"
        )
        components = run.get("components", {})
        peak = max(
            (abs(row.get("cycles", 0)) for row in components.values()),
            default=1,
        ) or 1
        grouped: Dict[str, List[str]] = {}
        for name in components:
            grouped.setdefault(by_category.get(name, "?"), []).append(name)
        for category in sorted(grouped):
            cat_total = run.get("categories", {}).get(category)
            suffix = f"  {cat_total:,} cycles" if cat_total is not None else ""
            lines.append(f"  {category}{suffix}")
            names = sorted(
                grouped[category],
                key=lambda n: -components[n].get("cycles", 0),
            )
            for name in names:
                row = components[name]
                cycles = row.get("cycles", 0)
                count = row.get("count", 0)
                pct = 100.0 * cycles / total if total else 0.0
                count_text = f" n={count:,}" if count else ""
                lines.append(
                    f"    {name:<26} {cycles:>14,}  {pct:5.1f}%  "
                    f"{_bar(cycles / peak)}{count_text}"
                )
        for name, row in sorted(run.get("overlays", {}).items()):
            lines.append(
                f"  ~ {name:<26} {row.get('cycles', 0):>12,} cycles  "
                f"n={row.get('count', 0):,}  (overlay, cross-category)"
            )
        unattr = run.get("unattributed_cycles", 0)
        if unattr:
            lines.append(f"  ! unattributed {unattr:,} cycles")
        lines.append("")
    return "\n".join(lines).rstrip("\n")


def render_top_consumers(
    payload: Mapping[str, Any], top: int = 10
) -> str:
    """Inverted view: components aggregated across runs, biggest first."""
    totals: Dict[str, Dict[str, int]] = {}
    grand = 0
    for run in payload.get("runs", []):
        grand += run.get("total_cycles") or 0
        for name, row in run.get("components", {}).items():
            agg = totals.setdefault(name, {"count": 0, "cycles": 0})
            agg["count"] += row.get("count", 0)
            agg["cycles"] += row.get("cycles", 0)
    if not totals:
        return "(no profiled runs)"
    ranked = sorted(totals.items(), key=lambda kv: -kv[1]["cycles"])[:top]
    peak = max(abs(row["cycles"]) for _, row in ranked) or 1
    lines = [f"top {len(ranked)} cycle consumers across "
             f"{len(payload.get('runs', []))} run(s)"]
    for name, row in ranked:
        pct = 100.0 * row["cycles"] / grand if grand else 0.0
        lines.append(
            f"  {name:<26} {row['cycles']:>16,}  {pct:5.1f}%  "
            f"{_bar(row['cycles'] / peak)}  n={row['count']:,}"
        )
    return "\n".join(lines)


def render_histograms(payload: Mapping[str, Any]) -> str:
    """Compact ASCII rendering of the per-op latency histograms."""
    hists = payload.get("histograms", {})
    if not hists:
        return "(no histograms)"
    lines: List[str] = []
    for name in sorted(hists):
        hist = Log2Histogram.from_dict(hists[name])
        mean = hist.total / hist.count if hist.count else 0.0
        lines.append(
            f"{name}  n={hist.count:,}  total={hist.total:,}  "
            f"mean={mean:.1f} cycles"
        )
        peak = max(hist.buckets) or 1
        bounds = hist.upper_bounds()
        for idx, filled in enumerate(hist.buckets):
            if not filled:
                continue
            lo = 0 if idx == 0 else 1 << (idx - 1)
            hi = "inf" if idx == hist.N_BUCKETS - 1 else str(bounds[idx])
            lines.append(
                f"  [{lo:>8} .. {hi:>8}]  {filled:>10,}  "
                f"{_bar(filled / peak, 20)}"
            )
    return "\n".join(lines)
