"""Chrome/Perfetto trace-event export of span trees and sampled events.

Converts the PR-3 observability payloads — ``Tracer.to_dict()`` span
forests (``kind: "spans"`` metrics records) and ``EventRing.to_dict()``
samples (``kind: "events"`` records) — into the Trace Event JSON format
understood by ``ui.perfetto.dev`` and ``chrome://tracing``:

* each span becomes a ``ph: "X"`` *complete* event (microsecond ``ts`` +
  ``dur``) on the span track, nesting by timestamp containment;
* each sampled hardware event becomes a ``ph: "i"`` *instant* event on a
  separate track, placed by its recorded ``perf_counter`` timestamp when
  the ring captured one, or laid out sequentially when not.

All timestamps are rebased so the earliest span (or event) is ``ts=0``.
Span payloads written before spans carried a ``start`` field are laid
out synthetically — children packed sequentially inside their parent —
preserving durations and monotone nesting so old ledgers still open.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Track (tid) assignments inside the single exported process.
SPAN_TID = 1
EVENT_TID = 2
#: Fleet tracks (instance lifetimes, per-stack counters) start here.
FLEET_TID_BASE = 10

_REQUIRED_FIELDS = ("ph", "ts", "pid", "tid")


def _span_starts(span: Mapping[str, Any]) -> List[float]:
    starts = []
    start = span.get("start")
    if isinstance(start, (int, float)):
        starts.append(float(start))
    for child in span.get("children", ()):
        starts.extend(_span_starts(child))
    return starts


def _emit_span(
    span: Mapping[str, Any],
    base: float,
    cursor_us: float,
    pid: int,
    out: List[Dict[str, Any]],
) -> float:
    """Emit one span (and its children) as complete events.

    Returns this span's end in microseconds. ``cursor_us`` is where a
    span lacking a recorded start is placed (sequential synthesis).
    """
    dur_us = max(0.0, float(span.get("seconds", 0.0))) * 1e6
    start = span.get("start")
    if isinstance(start, (int, float)):
        ts_us = (float(start) - base) * 1e6
    else:
        ts_us = cursor_us
    event: Dict[str, Any] = {
        "name": str(span.get("name", "span")),
        "ph": "X",
        "ts": round(ts_us, 3),
        "dur": round(dur_us, 3),
        "pid": pid,
        "tid": SPAN_TID,
    }
    attrs = span.get("attrs")
    if attrs:
        event["args"] = dict(attrs)
    out.append(event)
    child_cursor = ts_us
    for child in span.get("children", ()):
        child_cursor = _emit_span(child, base, child_cursor, pid, out)
    return ts_us + dur_us


def span_trace_events(
    spans: Iterable[Mapping[str, Any]],
    base: Optional[float] = None,
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """``ph: "X"`` complete events for a span forest."""
    spans = list(spans)
    if base is None:
        starts = [s for span in spans for s in _span_starts(span)]
        base = min(starts) if starts else 0.0
    out: List[Dict[str, Any]] = []
    cursor = 0.0
    for span in spans:
        cursor = _emit_span(span, base, cursor, pid, out)
    return out


def event_trace_events(
    ring_payload: Mapping[str, Any],
    base: Optional[float] = None,
    pid: int = 1,
) -> List[Dict[str, Any]]:
    """``ph: "i"`` instant events for an ``EventRing.to_dict()`` payload.

    Timestamped records (4-tuples) are placed on the shared clock; bare
    3-tuple records are laid out one microsecond apart in ring order.
    """
    out: List[Dict[str, Any]] = []
    records = ring_payload.get("events", ())
    stamped = [r for r in records if len(r) >= 4]
    if base is None:
        base = min((float(r[3]) for r in stamped), default=0.0)
    for index, record in enumerate(records):
        if len(record) >= 4:
            ts_us = (float(record[3]) - base) * 1e6
        else:
            ts_us = float(index)
        seq, kind, value = record[0], record[1], record[2]
        out.append(
            {
                "name": str(kind),
                "ph": "i",
                "ts": round(ts_us, 3),
                "pid": pid,
                "tid": EVENT_TID,
                "s": "t",
                "args": {"seq": seq, "value": value},
            }
        )
    return out


def fleet_trace_events(
    records: Iterable[Mapping[str, Any]], pid: int = 1
) -> List[Dict[str, Any]]:
    """Trace events for fleet telemetry records.

    ``kind: "fleet.instance"`` spans become one Perfetto track per pool
    instance — alternating ``busy``/``idle`` complete events, busy spans
    tagged cold or warm, idle spans named by how they ended, with an
    instant eviction marker where the LRU cap killed the instance.
    ``kind: "fleet.epoch"`` records become per-stack ``ph: "C"`` counter
    series (idle-pool size and cold starts over simulated time).

    Timestamps are simulated seconds (µs on the trace axis), base 0 —
    fleet records never share a clock with wall-time span records.
    """
    instance_records: List[Mapping[str, Any]] = []
    epoch_records: List[Mapping[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "fleet.instance":
            instance_records.append(record)
        elif kind == "fleet.epoch":
            epoch_records.append(record)
    if not instance_records and not epoch_records:
        return []
    out: List[Dict[str, Any]] = []
    tids: Dict[Any, int] = {}
    next_tid = FLEET_TID_BASE

    def tid_for(key: Any, name: str) -> int:
        nonlocal next_tid
        if key not in tids:
            tids[key] = next_tid
            next_tid += 1
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": tids[key],
                    "args": {"name": name},
                }
            )
        return tids[key]

    spans: List[Dict[str, Any]] = []
    markers: List[Dict[str, Any]] = []
    for record in instance_records:
        stack = record.get("stack", "")
        uid = record.get("uid", 0)
        tid = tid_for(
            ("inst", stack, uid),
            f"{stack} {record.get('function', '?')}#{uid}",
        )
        start_us = float(record.get("start_s", 0.0)) * 1e6
        end_us = float(record.get("end_s", 0.0)) * 1e6
        state = record.get("state", "span")
        outcome = record.get("outcome")
        name = state if outcome is None else f"{state}·{outcome}"
        args: Dict[str, Any] = {"stack": stack, "uid": uid}
        if "cold" in record:
            args["cold"] = record["cold"]
            name = "cold start" if record["cold"] else "busy"
        if outcome is not None:
            args["outcome"] = outcome
        spans.append(
            {
                "name": name,
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(max(0.0, end_us - start_us), 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
        if outcome == "evicted":
            markers.append(
                {
                    "name": "evicted",
                    "ph": "i",
                    "ts": round(end_us, 3),
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": {"stack": stack, "uid": uid},
                }
            )
    # Perfetto requires X events monotone by start per track.
    spans.sort(key=lambda e: (e["tid"], e["ts"]))
    out.extend(spans)
    out.extend(markers)
    counters: List[Dict[str, Any]] = []
    for record in epoch_records:
        stack = record.get("stack", "")
        tid = tid_for(("counters", stack), f"{stack} pool counters")
        ts_us = float(record.get("end_s", 0.0)) * 1e6
        counters.append(
            {
                "name": f"{stack} pool",
                "ph": "C",
                "ts": round(ts_us, 3),
                "pid": pid,
                "tid": tid,
                "args": {
                    "pool_size": record.get("pool_size", 0),
                    "cold_starts": record.get("cold_starts", 0),
                },
            }
        )
    counters.sort(key=lambda e: (e["tid"], e["ts"]))
    out.extend(counters)
    return out


def trace_events(
    records: Iterable[Mapping[str, Any]], pid: int = 1
) -> List[Dict[str, Any]]:
    """Trace events for a metrics-JSONL record stream.

    Consumes the ``kind: "spans"`` and ``kind: "events"`` records that
    ``repro run --trace --metrics out.jsonl`` writes; other kinds are
    ignored. Span and sampled-event tracks share one rebased clock when
    both carry real timestamps.
    """
    span_forests: List[List[Mapping[str, Any]]] = []
    ring_payloads: List[Mapping[str, Any]] = []
    fleet_records: List[Mapping[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "spans":
            span_forests.append(list(record.get("spans", ())))
        elif kind == "events":
            ring_payloads.append(record)
        elif kind in ("fleet.instance", "fleet.epoch"):
            fleet_records.append(record)
    starts = [
        s
        for forest in span_forests
        for span in forest
        for s in _span_starts(span)
    ]
    for payload in ring_payloads:
        starts.extend(
            float(r[3]) for r in payload.get("events", ()) if len(r) >= 4
        )
    base = min(starts) if starts else 0.0
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": SPAN_TID,
            "args": {"name": "phases"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": EVENT_TID,
            "args": {"name": "hw events"},
        },
    ]
    # Forests share one track; records may arrive out of chronological
    # order (a client span appended after the service's job spans), so
    # sort by start — ties keep the enclosing (longer) span first.
    span_events: List[Dict[str, Any]] = []
    for forest in span_forests:
        span_events.extend(span_trace_events(forest, base=base, pid=pid))
    span_events.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    events.extend(span_events)
    for payload in ring_payloads:
        events.extend(event_trace_events(payload, base=base, pid=pid))
    events.extend(fleet_trace_events(fleet_records, pid=pid))
    return events


def validate_trace_events(events: Iterable[Mapping[str, Any]]) -> int:
    """Check trace-event invariants; returns the number of events.

    Raises :class:`ValueError` when an event is missing a required field
    (``ph``/``ts``/``pid``/``tid``), a duration is negative, or the
    ``ph: "X"`` events on one track are not monotone by start time —
    the properties Perfetto's JSON importer relies on.
    """
    count = 0
    last_start: Dict[Any, float] = {}
    for event in events:
        count += 1
        for field in _REQUIRED_FIELDS:
            if field not in event:
                raise ValueError(
                    f"trace event {event.get('name', '?')!r} missing "
                    f"required field {field!r}"
                )
        if not isinstance(event["ts"], (int, float)):
            raise ValueError("trace event ts must be numeric")
        if event["ph"] == "X":
            dur = event.get("dur", 0)
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError("complete event dur must be >= 0")
            track = (event["pid"], event["tid"])
            if event["ts"] < last_start.get(track, float("-inf")):
                raise ValueError(
                    f"complete events out of order on track {track}"
                )
            last_start[track] = float(event["ts"])
    return count


def export_timeline(
    path, records: Iterable[Mapping[str, Any]], pid: int = 1
) -> Path:
    """Write a Perfetto-loadable trace JSON for a metrics record stream.

    The payload is the standard ``{"traceEvents": [...]}`` wrapper, which
    both Perfetto's JSON importer and ``chrome://tracing`` accept.
    """
    events = trace_events(records, pid=pid)
    validate_trace_events(events)
    path = Path(path)
    path.write_text(
        json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"},
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    return path
