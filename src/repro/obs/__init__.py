"""Observability: tracing, metrics, events, ledger, profiler, timeline.

The subsystem's parts are all off by default and woven through the
harness so enabling them costs one CLI flag (``repro run --trace
--metrics out.prom``, ``repro run --profile``) rather than code changes:

* :mod:`repro.obs.tracing` — nested wall-clock spans over a run's
  phases, with a shared no-op null tracer when disabled.
* :mod:`repro.obs.metrics` — Stats snapshots, span trees, histograms,
  and profiles serialized to Prometheus text and JSON-lines.
* :mod:`repro.obs.events` — a sampled, bounded ring of hardware events
  (HOT hits, AAC bumps, bypass instantiations, TLB shootdowns).
* :mod:`repro.obs.ledger` — the append-only run ledger every engine
  execution writes, plus the ``repro obs check`` regression gate.
* :mod:`repro.obs.profile` — exact simulated-cycle attribution (the
  paper's Fig. 9 question) and per-op log2 latency histograms.
* :mod:`repro.obs.timeline` — span trees and sampled events exported as
  Chrome/Perfetto trace-event JSON (``repro obs timeline``).
* :mod:`repro.obs.trend` — ledger history analytics: robust per-key
  wall-time and digest drift detection (``repro obs trend``).
"""

from repro.obs.events import EventRing, get_ring, install_ring
from repro.obs.ledger import (
    DEFAULT_THRESHOLD_PCT,
    LEDGER_NAME,
    RunLedger,
    check_bench,
    check_ledger_determinism,
    counter_digest,
    default_ledger_path,
    fleet_manifest,
    manifest,
    payload_digest,
    split_fleet_entries,
)
from repro.obs.metrics import (
    event_record,
    histogram_lines,
    profile_record,
    prometheus_lines,
    read_jsonl,
    render_prometheus,
    run_record,
    sanitize_metric_name,
    span_record,
    write_jsonl,
    write_prometheus,
)
from repro.obs.profile import (
    CycleProfile,
    Log2Histogram,
    ProfileCell,
    get_profile,
    install_profile,
    render_histograms,
    render_profile,
    render_top_consumers,
)
from repro.obs.timeline import (
    export_timeline,
    fleet_trace_events,
    trace_events,
    validate_trace_events,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    render_span_tree,
    set_thread_tracer,
    set_tracer,
)
from repro.obs.trend import (
    check_bench_trend,
    check_fleet_trend,
    check_trend,
    fleet_trend,
    render_bench_trend,
    render_fleet_trend,
    render_trend,
    trend_by_key,
)

__all__ = [
    "DEFAULT_THRESHOLD_PCT",
    "CycleProfile",
    "EventRing",
    "LEDGER_NAME",
    "Log2Histogram",
    "NULL_TRACER",
    "NullTracer",
    "ProfileCell",
    "RunLedger",
    "Span",
    "Tracer",
    "check_bench",
    "check_ledger_determinism",
    "check_bench_trend",
    "check_fleet_trend",
    "check_trend",
    "counter_digest",
    "default_ledger_path",
    "event_record",
    "export_timeline",
    "fleet_manifest",
    "fleet_trace_events",
    "fleet_trend",
    "get_profile",
    "get_ring",
    "get_tracer",
    "histogram_lines",
    "install_profile",
    "install_ring",
    "manifest",
    "payload_digest",
    "profile_record",
    "prometheus_lines",
    "read_jsonl",
    "render_histograms",
    "render_profile",
    "render_prometheus",
    "render_span_tree",
    "render_top_consumers",
    "run_record",
    "sanitize_metric_name",
    "set_thread_tracer",
    "set_tracer",
    "span_record",
    "split_fleet_entries",
    "trace_events",
    "trend_by_key",
    "render_bench_trend",
    "render_fleet_trend",
    "render_trend",
    "validate_trace_events",
    "write_jsonl",
    "write_prometheus",
]
