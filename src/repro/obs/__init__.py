"""Observability: span tracing, metrics export, event ring, run ledger.

The subsystem has four small parts, all off by default and woven through
the harness so enabling them costs one CLI flag (``repro run --trace
--metrics out.prom``) rather than code changes:

* :mod:`repro.obs.tracing` — nested wall-clock spans over a run's
  phases, with a shared no-op null tracer when disabled.
* :mod:`repro.obs.metrics` — Stats snapshots and span trees serialized
  to Prometheus text and JSON-lines.
* :mod:`repro.obs.events` — a sampled, bounded ring of hardware events
  (HOT hits, AAC bumps, bypass instantiations, TLB shootdowns).
* :mod:`repro.obs.ledger` — the append-only run ledger every engine
  execution writes, plus the ``repro obs check`` regression gate.
"""

from repro.obs.events import EventRing, get_ring, install_ring
from repro.obs.ledger import (
    DEFAULT_THRESHOLD_PCT,
    LEDGER_NAME,
    RunLedger,
    check_bench,
    check_ledger_determinism,
    counter_digest,
    default_ledger_path,
    manifest,
)
from repro.obs.metrics import (
    event_record,
    prometheus_lines,
    read_jsonl,
    render_prometheus,
    run_record,
    sanitize_metric_name,
    span_record,
    write_jsonl,
    write_prometheus,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    render_span_tree,
    set_tracer,
)

__all__ = [
    "DEFAULT_THRESHOLD_PCT",
    "EventRing",
    "LEDGER_NAME",
    "NULL_TRACER",
    "NullTracer",
    "RunLedger",
    "Span",
    "Tracer",
    "check_bench",
    "check_ledger_determinism",
    "counter_digest",
    "default_ledger_path",
    "event_record",
    "get_ring",
    "get_tracer",
    "install_ring",
    "manifest",
    "prometheus_lines",
    "read_jsonl",
    "render_prometheus",
    "render_span_tree",
    "run_record",
    "sanitize_metric_name",
    "set_tracer",
    "span_record",
    "write_jsonl",
    "write_prometheus",
]
