"""Span tracing: where a run spends its wall time.

A :class:`Tracer` records a tree of named, nested :class:`Span` objects
— trace load, columnar pack, replay, stats fold, cache admit — each with
wall-clock duration and free-form attributes. Instrumented code asks for
the process-wide active tracer via :func:`get_tracer`; by default that is
the :data:`NULL_TRACER`, whose ``span`` returns one shared no-op context
manager, so the instrumentation points cost a single method call and no
allocation when tracing is off. The hot replay loops themselves are never
instrumented per event — spans wrap phases, not lines.

Span trees serialize with ``to_dict`` (consumed by the metrics exporters
and the ``repro obs`` CLI) and render as an ASCII tree with
:func:`render_span_tree`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional


class Span:
    """One timed, named region; nests via ``children``."""

    __slots__ = ("name", "attrs", "start", "end", "children", "_tracer")

    def __init__(self, name: str, tracer: "Tracer", attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.children: List["Span"] = []
        self._tracer = tracer

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while still open)."""
        return max(0.0, self.end - self.start)

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the open span."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self._tracer._clock()
        self._tracer._pop(self)
        return False

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form: name, seconds, start, attrs, children.

        ``start`` is the raw tracer-clock reading at span entry — only
        offsets between spans of one payload are meaningful (the timeline
        exporter rebases them to the earliest span).
        """
        out: Dict[str, Any] = {
            "name": self.name,
            "seconds": self.seconds,
            "start": self.start,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds:.6f}s)"


class Tracer:
    """Collects a forest of nested spans.

    ``span(name, **attrs)`` returns a context manager; entering it pushes
    onto the nesting stack (becoming the parent of spans opened inside),
    exiting records the duration. Completed top-level spans accumulate in
    ``roots``. Thread-compatible for the harness's use (one tracer per
    process; worker processes run untraced).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a new (not yet entered) span under the current one."""
        return Span(name, self, attrs)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exits out of order (a span leaked across an exception):
        # unwind to the matching entry instead of corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def clear(self) -> None:
        self.roots = []
        self._stack = []

    def to_dict(self) -> Dict[str, Any]:
        """The whole span forest in plain-JSON form."""
        return {"spans": [span.to_dict() for span in self.roots]}


class _NullSpan:
    """Shared do-nothing span: every call is a constant-time no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {"name": "null", "seconds": 0.0}


class NullTracer:
    """The disabled tracer: one shared span, no recording, no allocation."""

    enabled = False

    _span = _NullSpan()

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return self._span

    @property
    def roots(self) -> List[Span]:
        return []

    def clear(self) -> None:
        pass

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": []}


#: The process-wide default: tracing off.
NULL_TRACER = NullTracer()

_active = NULL_TRACER

#: Per-thread tracer overrides (service worker threads trace their jobs
#: independently; see :func:`set_thread_tracer`).
_thread_local = threading.local()


def get_tracer():
    """The currently active tracer for the calling thread.

    A thread-local tracer installed with :func:`set_thread_tracer` wins;
    otherwise the process-wide tracer from :func:`set_tracer` (the null
    tracer unless one is installed).
    """
    tracer = getattr(_thread_local, "tracer", None)
    return _active if tracer is None else tracer


def set_tracer(tracer) -> Any:
    """Install ``tracer`` as the active one; returns the previous tracer.

    Pass ``None`` (or :data:`NULL_TRACER`) to disable tracing again.
    """
    global _active
    previous = _active
    _active = NULL_TRACER if tracer is None else tracer
    return previous


def set_thread_tracer(tracer) -> Any:
    """Install ``tracer`` for the *calling thread only*.

    The service's job-queue workers run concurrently over one shared
    engine; each worker traces its own job into a private tracer without
    the span forests of concurrent jobs interleaving through the global
    nesting stack. Returns the thread's previous override (``None`` when
    the thread was inheriting the process-wide tracer) so callers can
    restore it; pass ``None`` to fall back to the global tracer again.
    """
    previous = getattr(_thread_local, "tracer", None)
    _thread_local.tracer = tracer
    return previous


def render_span_tree(tree: Dict[str, Any], indent: str = "") -> str:
    """ASCII rendering of a ``Tracer.to_dict()`` payload (or one span).

    Each line shows the span name, duration in milliseconds, and its
    attributes; children are indented two spaces per level.
    """
    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        attr_text = (
            " " + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            if attrs
            else ""
        )
        lines.append(
            f"{indent}{'  ' * depth}{span['name']:<24} "
            f"{span.get('seconds', 0.0) * 1e3:9.3f} ms{attr_text}"
        )
        for child in span.get("children", ()):
            walk(child, depth + 1)

    spans = tree.get("spans", [tree] if "name" in tree else [])
    for span in spans:
        walk(span, 0)
    return "\n".join(lines)
