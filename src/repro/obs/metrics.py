"""Metrics export: Stats snapshots to Prometheus text and JSON-lines.

Two formats, one source of truth — the :meth:`~repro.sim.stats.Stats.
to_dict` counter snapshot carried on every :class:`RunResult`:

* **Prometheus text exposition** (``*.prom``): counter names are
  sanitized (dots become underscores) under a ``repro_`` prefix, each
  sample labelled with its workload and stack, so the file can be
  dropped into a node-exporter textfile collector or diffed directly.
* **JSON-lines** (``*.jsonl``): one self-describing record per run
  (``kind: "run"``) plus optional span-tree (``kind: "spans"``) and
  sampled-event (``kind: "events"``) records. ``repro obs report``
  consumes this format.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")

DEFAULT_PREFIX = "repro"


def sanitize_metric_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """Fold a dotted counter name into a legal Prometheus metric name."""
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _label_text(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        name = _LABEL_RE.sub("_", str(key))
        value = str(labels[key]).replace("\\", r"\\").replace('"', r"\"")
        parts.append(f'{name}="{value}"')
    return "{" + ",".join(parts) + "}"


def prometheus_lines(
    counters: Mapping[str, float],
    labels: Optional[Mapping[str, str]] = None,
    prefix: str = DEFAULT_PREFIX,
    seen_types: Optional[set] = None,
) -> List[str]:
    """Render one counter snapshot as Prometheus exposition lines.

    Every family's first appearance carries ``# HELP`` and ``# TYPE``
    headers; ``seen_types`` (shared across calls when rendering several
    snapshots into one file) suppresses duplicates, which the format
    forbids.
    """
    seen = seen_types if seen_types is not None else set()
    label_text = _label_text(labels or {})
    lines: List[str] = []
    for name in sorted(counters):
        metric = sanitize_metric_name(name, prefix)
        if metric not in seen:
            seen.add(metric)
            lines.append(f"# HELP {metric} repro counter {name}")
            lines.append(f"# TYPE {metric} gauge")
        value = counters[name]
        lines.append(f"{metric}{label_text} {value:g}")
    return lines


def render_prometheus(
    snapshots: Iterable[Mapping[str, Any]],
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """Render ``[{"labels": {...}, "counters": {...}}, ...]`` to one
    exposition-format document."""
    seen: set = set()
    lines: List[str] = []
    for snapshot in snapshots:
        lines.extend(
            prometheus_lines(
                snapshot.get("counters", {}),
                snapshot.get("labels"),
                prefix=prefix,
                seen_types=seen,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    path: Path,
    snapshots: Iterable[Mapping[str, Any]],
    prefix: str = DEFAULT_PREFIX,
) -> Path:
    path = Path(path)
    path.write_text(render_prometheus(snapshots, prefix=prefix))
    return path


def histogram_lines(
    hist_payload: Mapping[str, Any],
    labels: Optional[Mapping[str, str]] = None,
    prefix: str = DEFAULT_PREFIX,
    seen_types: Optional[set] = None,
) -> List[str]:
    """Render one ``Log2Histogram.to_dict()`` payload as a Prometheus
    histogram: cumulative ``_bucket{le=...}`` samples, ``_sum``, and
    ``_count``, with the standard ``+Inf`` terminal bucket.
    """
    seen = seen_types if seen_types is not None else set()
    name = str(hist_payload.get("name", "hist"))
    metric = sanitize_metric_name(name, prefix)
    lines: List[str] = []
    if metric not in seen:
        seen.add(metric)
        lines.append(f"# HELP {metric} repro log2 histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
    base_labels = dict(labels or {})
    buckets = hist_payload.get("buckets", [])
    bounds = hist_payload.get("upper_bounds", [])
    cumulative = 0
    for count, bound in zip(buckets, bounds):
        cumulative += count
        if not count and not cumulative:
            continue
        label_text = _label_text({**base_labels, "le": str(bound)})
        lines.append(f"{metric}_bucket{label_text} {cumulative}")
    inf_text = _label_text({**base_labels, "le": "+Inf"})
    total = hist_payload.get("count", cumulative)
    lines.append(f"{metric}_bucket{inf_text} {total}")
    plain = _label_text(base_labels)
    lines.append(f"{metric}_sum{plain} {hist_payload.get('total', 0):g}")
    lines.append(f"{metric}_count{plain} {total}")
    return lines


# -- JSON-lines ---------------------------------------------------------------


def run_record(
    result_summary: Mapping[str, Any], stack: Optional[str] = None
) -> Dict[str, Any]:
    """One ``kind: "run"`` record from a :meth:`RunResult.to_dict` dict.

    ``stack`` overrides the derived baseline/memento label (the ablation
    runs — e.g. Memento without bypass — need a distinct label)."""
    from repro.resolve import resolve_stack

    return {
        "kind": "run",
        "workload": result_summary.get("name"),
        "stack": stack
        or resolve_stack(bool(result_summary.get("memento"))),
        "total_cycles": result_summary.get("total_cycles"),
        "seconds": result_summary.get("seconds"),
        "dram_bytes": result_summary.get("dram_bytes"),
        "counters": result_summary.get("stats", {}),
    }


def span_record(tracer_payload: Mapping[str, Any]) -> Dict[str, Any]:
    """One ``kind: "spans"`` record from ``Tracer.to_dict()``."""
    return {"kind": "spans", "spans": tracer_payload.get("spans", [])}


def event_record(ring_payload: Mapping[str, Any]) -> Dict[str, Any]:
    """One ``kind: "events"`` record from ``EventRing.to_dict()``."""
    return {"kind": "events", **dict(ring_payload)}


def profile_record(profile_payload: Mapping[str, Any]) -> Dict[str, Any]:
    """One ``kind: "profile"`` record from ``CycleProfile.to_dict()``."""
    return {"kind": "profile", **dict(profile_payload)}


def write_jsonl(path: Path, records: Iterable[Mapping[str, Any]]) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_jsonl(path: Path) -> List[Dict[str, Any]]:
    """Load a JSONL file, skipping blank or corrupt lines."""
    records: List[Dict[str, Any]] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records
