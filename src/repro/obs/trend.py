"""Ledger trend analytics: history-aware drift detection.

``repro obs check`` compares a fresh bench payload against one committed
baseline; this module instead walks the *full* run-ledger history
(``.repro-cache/ledger.jsonl``), groups entries by content key, and asks
two questions per key:

* **wall-time drift** — is the latest live execution an outlier against
  the key's history? The test is robust: the latest elapsed time must
  exceed the historical median by both a percentage threshold and
  ``mad_k`` scaled median-absolute-deviations, so one slow machine day
  does not fail the gate and a genuinely bimodal history does not pass
  it. Only slowdowns flag (speedups are good news). Cache and memo hits
  replay a stored artifact in ~0 time, so only ``source == "live"``
  entries enter the timing series.
* **digest drift** — did the same content key ever produce more than one
  counter digest? The simulator is deterministic, so any disagreement is
  a correctness regression, never noise (all sources count here).

``check_trend`` aggregates per-key verdicts into a gate result the CLI
turns into an exit code (`repro obs trend`, report-only in CI).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.ledger import RunLedger

#: Latest live run must be at least this much slower than the median
#: before it can flag (percent).
DEFAULT_TREND_THRESHOLD_PCT = 50.0

#: ...and exceed the median by this many scaled MADs.
DEFAULT_MAD_K = 4.0

#: Consistency factor making the MAD comparable to a standard deviation
#: under normality.
MAD_SCALE = 1.4826

#: Fewer live samples than this and the timing test abstains (median and
#: MAD of a couple of points carry no signal).
MIN_SAMPLES = 3


def median(values: Sequence[float]) -> float:
    """Plain median (average of middle pair for even lengths)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def trend_by_key(
    entries: Sequence[Mapping[str, Any]],
    threshold_pct: float = DEFAULT_TREND_THRESHOLD_PCT,
    mad_k: float = DEFAULT_MAD_K,
    min_samples: int = MIN_SAMPLES,
) -> List[Dict[str, Any]]:
    """Per-content-key trend rows for a ledger entry sequence.

    Each row carries the key's workload/stack, live-sample count, median
    and latest elapsed seconds, the robust drift verdict, and the set of
    counter digests seen. Rows are ordered by first appearance.
    """
    grouped: Dict[str, Dict[str, Any]] = {}
    for entry in entries:
        key = entry.get("key")
        if not key:
            continue
        group = grouped.get(key)
        if group is None:
            group = grouped[key] = {
                "key": key,
                "workload": entry.get("workload"),
                "stack": entry.get("stack"),
                "runs": 0,
                "live_elapsed": [],
                "digests": [],
            }
        group["runs"] += 1
        if entry.get("source") == "live":
            elapsed = entry.get("elapsed_s")
            if isinstance(elapsed, (int, float)) and elapsed >= 0:
                group["live_elapsed"].append(float(elapsed))
        digest = entry.get("counter_digest")
        if digest and digest not in group["digests"]:
            group["digests"].append(digest)

    rows: List[Dict[str, Any]] = []
    for group in grouped.values():
        series: List[float] = group.pop("live_elapsed")
        digests: List[str] = group["digests"]
        row = dict(group)
        row["live_samples"] = len(series)
        row["digest_drift"] = len(digests) > 1
        row["time_drift"] = False
        row["median_s"] = None
        row["latest_s"] = None
        row["deviation_mads"] = None
        if len(series) >= max(2, min_samples):
            history, latest = series[:-1], series[-1]
            center = median(history)
            spread = MAD_SCALE * mad(history, center)
            row["median_s"] = center
            row["latest_s"] = latest
            if spread > 0:
                row["deviation_mads"] = (latest - center) / spread
            over_pct = latest > center * (1.0 + threshold_pct / 100.0)
            over_mad = spread == 0 or latest > center + mad_k * spread
            row["time_drift"] = over_pct and over_mad
        row["drift"] = row["time_drift"] or row["digest_drift"]
        rows.append(row)
    return rows


def check_trend(
    ledger: RunLedger,
    threshold_pct: float = DEFAULT_TREND_THRESHOLD_PCT,
    mad_k: float = DEFAULT_MAD_K,
    min_samples: int = MIN_SAMPLES,
) -> Dict[str, Any]:
    """Gate result over the full ledger history.

    ``{"ok": bool, "rows": [...], "entries": N, "skipped": M}`` — ``ok``
    is False when any key shows wall-time or digest drift. ``skipped``
    counts ledger lines whose schema the reader did not recognize.
    """
    entries, skipped = ledger.read_classified()
    rows = trend_by_key(
        entries,
        threshold_pct=threshold_pct,
        mad_k=mad_k,
        min_samples=min_samples,
    )
    drifted = [row for row in rows if row["drift"]]
    return {
        "ok": not drifted,
        "threshold_pct": threshold_pct,
        "mad_k": mad_k,
        "entries": len(entries),
        "skipped": skipped,
        "rows": rows,
    }


def render_trend(report: Mapping[str, Any]) -> str:
    """ASCII table of a :func:`check_trend` report."""
    rows = report.get("rows", [])
    if not rows:
        return "(ledger has no trend data)"
    lines = [
        f"{'workload':<14} {'stack':<9} {'runs':>5} {'live':>5} "
        f"{'median_s':>9} {'latest_s':>9} {'dev':>7}  status"
    ]
    for row in rows:
        med = row.get("median_s")
        latest = row.get("latest_s")
        dev = row.get("deviation_mads")
        if row.get("digest_drift"):
            status = "DIGEST DRIFT"
        elif row.get("time_drift"):
            status = "TIME DRIFT"
        elif row.get("live_samples", 0) < MIN_SAMPLES:
            status = "(insufficient history)"
        else:
            status = "ok"
        med_text = f"{med:>9.3f}" if med is not None else f"{'-':>9}"
        latest_text = f"{latest:>9.3f}" if latest is not None else f"{'-':>9}"
        dev_text = f"{dev:>7.2f}" if dev is not None else f"{'-':>7}"
        lines.append(
            f"{str(row.get('workload')):<14} {str(row.get('stack')):<9} "
            f"{row.get('runs', 0):>5} {row.get('live_samples', 0):>5} "
            f"{med_text} {latest_text} {dev_text}  {status}"
        )
    skipped = report.get("skipped", 0)
    if skipped:
        lines.append(f"(skipped {skipped} unrecognized ledger line(s))")
    return "\n".join(lines)
