"""Ledger trend analytics: history-aware drift detection.

``repro obs check`` compares a fresh bench payload against one committed
baseline; this module instead walks the *full* run-ledger history
(``.repro-cache/ledger.jsonl``), groups entries by content key, and asks
two questions per key:

* **wall-time drift** — is the latest live execution an outlier against
  the key's history? The test is robust: the latest elapsed time must
  exceed the historical median by both a percentage threshold and
  ``mad_k`` scaled median-absolute-deviations, so one slow machine day
  does not fail the gate and a genuinely bimodal history does not pass
  it. Only slowdowns flag (speedups are good news). Cache and memo hits
  replay a stored artifact in ~0 time, so only ``source == "live"``
  entries enter the timing series.
* **digest drift** — did the same content key ever produce more than one
  counter digest? The simulator is deterministic, so any disagreement is
  a correctness regression, never noise (all sources count here).

``check_trend`` aggregates per-key verdicts into a gate result the CLI
turns into an exit code (`repro obs trend`, report-only in CI).

A third gate rides the committed ``BENCH_<date>.json`` history instead
of the ledger: :func:`check_bench_trend` compares each replay key's
events/s in the newest bench file against the median of the older files
and flags drops beyond a tolerance — throughput regressions land in the
same `repro obs trend` exit code as wall-time and digest drift.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.ledger import RunLedger, split_fleet_entries

#: Latest live run must be at least this much slower than the median
#: before it can flag (percent).
DEFAULT_TREND_THRESHOLD_PCT = 50.0

#: ...and exceed the median by this many scaled MADs.
DEFAULT_MAD_K = 4.0

#: Consistency factor making the MAD comparable to a standard deviation
#: under normality.
MAD_SCALE = 1.4826

#: Fewer live samples than this and the timing test abstains (median and
#: MAD of a couple of points carry no signal).
MIN_SAMPLES = 3

#: Latest bench events/s may fall this far below the historical median
#: before the throughput gate flags. Generous on purpose: bench files
#: are committed from whatever machine produced the PR, so
#: cross-machine scatter is part of the series.
DEFAULT_BENCH_DROP_PCT = 40.0

#: Fleet headline metrics (cold-start p95, stranded GB·s) may worsen by
#: this much against their scenario's historical median before the
#: fleet gate flags.
DEFAULT_FLEET_TREND_PCT = 25.0

_BENCH_PATTERN = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})\.json$")


def median(values: Sequence[float]) -> float:
    """Plain median (average of middle pair for even lengths)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def mad(values: Sequence[float], center: Optional[float] = None) -> float:
    """Median absolute deviation around ``center`` (default: the median)."""
    if center is None:
        center = median(values)
    return median([abs(v - center) for v in values])


def trend_by_key(
    entries: Sequence[Mapping[str, Any]],
    threshold_pct: float = DEFAULT_TREND_THRESHOLD_PCT,
    mad_k: float = DEFAULT_MAD_K,
    min_samples: int = MIN_SAMPLES,
) -> List[Dict[str, Any]]:
    """Per-content-key trend rows for a ledger entry sequence.

    Each row carries the key's workload/stack, live-sample count, median
    and latest elapsed seconds, the robust drift verdict, and the set of
    counter digests seen. Rows are ordered by first appearance.
    """
    grouped: Dict[str, Dict[str, Any]] = {}
    for entry in entries:
        key = entry.get("key")
        if not key:
            continue
        group = grouped.get(key)
        if group is None:
            group = grouped[key] = {
                "key": key,
                "workload": entry.get("workload"),
                "stack": entry.get("stack"),
                "runs": 0,
                "live_elapsed": [],
                "digests": [],
            }
        group["runs"] += 1
        if entry.get("source") == "live":
            elapsed = entry.get("elapsed_s")
            if isinstance(elapsed, (int, float)) and elapsed >= 0:
                group["live_elapsed"].append(float(elapsed))
        digest = entry.get("counter_digest")
        if digest and digest not in group["digests"]:
            group["digests"].append(digest)

    rows: List[Dict[str, Any]] = []
    for group in grouped.values():
        series: List[float] = group.pop("live_elapsed")
        digests: List[str] = group["digests"]
        row = dict(group)
        row["live_samples"] = len(series)
        row["digest_drift"] = len(digests) > 1
        row["time_drift"] = False
        row["median_s"] = None
        row["latest_s"] = None
        row["deviation_mads"] = None
        if len(series) >= max(2, min_samples):
            history, latest = series[:-1], series[-1]
            center = median(history)
            spread = MAD_SCALE * mad(history, center)
            row["median_s"] = center
            row["latest_s"] = latest
            if spread > 0:
                row["deviation_mads"] = (latest - center) / spread
            over_pct = latest > center * (1.0 + threshold_pct / 100.0)
            over_mad = spread == 0 or latest > center + mad_k * spread
            row["time_drift"] = over_pct and over_mad
        row["drift"] = row["time_drift"] or row["digest_drift"]
        rows.append(row)
    return rows


def check_trend(
    ledger: RunLedger,
    threshold_pct: float = DEFAULT_TREND_THRESHOLD_PCT,
    mad_k: float = DEFAULT_MAD_K,
    min_samples: int = MIN_SAMPLES,
) -> Dict[str, Any]:
    """Gate result over the full ledger history.

    ``{"ok": bool, "rows": [...], "entries": N, "skipped": M}`` — ``ok``
    is False when any key shows wall-time or digest drift. ``skipped``
    counts ledger lines whose schema the reader did not recognize.
    """
    entries, skipped = ledger.read_classified()
    run_entries, _ = split_fleet_entries(entries)
    rows = trend_by_key(
        run_entries,
        threshold_pct=threshold_pct,
        mad_k=mad_k,
        min_samples=min_samples,
    )
    drifted = [row for row in rows if row["drift"]]
    return {
        "ok": not drifted,
        "threshold_pct": threshold_pct,
        "mad_k": mad_k,
        "entries": len(run_entries),
        "skipped": skipped,
        "rows": rows,
    }


def fleet_trend(
    entries: Sequence[Mapping[str, Any]],
    threshold_pct: float = DEFAULT_FLEET_TREND_PCT,
    min_samples: int = MIN_SAMPLES,
) -> List[Dict[str, Any]]:
    """Per-(scenario, stack) drift rows over fleet ledger entries.

    Groups ``kind: "fleet"`` lines by the fingerprint-free ``scenario``
    digest (so the series survives source changes that shift the fleet
    content key) and, per stack, compares the latest cold-start p95 and
    stranded GB·s against the median of the history. Only regressions
    flag — lower latency and less stranding are good news. A fleet key
    whose history holds more than one ``metrics_digest`` flags
    ``digest_drift`` (seeded simulations must be bit-stable).
    """
    grouped: Dict[Any, Dict[str, Any]] = {}
    key_digests: Dict[str, List[str]] = {}
    for entry in entries:
        if entry.get("kind") != "fleet":
            continue
        digest = entry.get("metrics_digest")
        fleet_key = entry.get("key")
        if fleet_key and digest:
            bucket = key_digests.setdefault(fleet_key, [])
            if digest not in bucket:
                bucket.append(digest)
        scenario = entry.get("scenario")
        for stack, summary in (entry.get("stacks") or {}).items():
            group_key = (scenario, stack)
            group = grouped.get(group_key)
            if group is None:
                group = grouped[group_key] = {
                    "scenario": scenario,
                    "stack": stack,
                    "fleet_keys": [],
                    "cold_p95": [],
                    "stranded": [],
                }
            if fleet_key and fleet_key not in group["fleet_keys"]:
                group["fleet_keys"].append(fleet_key)
            p95 = summary.get("cold_start_p95_ms")
            if isinstance(p95, (int, float)):
                group["cold_p95"].append(float(p95))
            gb_s = summary.get("stranded_gb_s")
            if isinstance(gb_s, (int, float)):
                group["stranded"].append(float(gb_s))

    def drift(series: List[float]) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "samples": len(series),
            "median": None,
            "latest": None,
            "drift": False,
        }
        if len(series) >= max(2, min_samples):
            history, latest = series[:-1], series[-1]
            center = median(history)
            out["median"] = center
            out["latest"] = latest
            out["drift"] = latest > center * (
                1.0 + threshold_pct / 100.0
            ) and latest > center + 1e-12
        return out

    rows: List[Dict[str, Any]] = []
    for group in grouped.values():
        row: Dict[str, Any] = {
            "scenario": group["scenario"],
            "stack": group["stack"],
            "runs": max(
                len(group["cold_p95"]), len(group["stranded"])
            ),
            "cold_start_p95_ms": drift(group["cold_p95"]),
            "stranded_gb_s": drift(group["stranded"]),
            "digest_drift": any(
                len(key_digests.get(key, [])) > 1
                for key in group["fleet_keys"]
            ),
        }
        row["drift"] = (
            row["cold_start_p95_ms"]["drift"]
            or row["stranded_gb_s"]["drift"]
            or row["digest_drift"]
        )
        rows.append(row)
    return rows


def check_fleet_trend(
    ledger: RunLedger,
    threshold_pct: float = DEFAULT_FLEET_TREND_PCT,
    min_samples: int = MIN_SAMPLES,
) -> Dict[str, Any]:
    """Fleet drift gate over the ledger's ``kind: "fleet"`` history.

    ``{"ok": bool, "entries": N, "rows": [...]}`` — ``ok`` is False when
    any scenario/stack shows cold-start, stranding, or metrics-digest
    drift. With no fleet lines the gate abstains (``ok`` True, no rows).
    """
    entries, _ = ledger.read_classified()
    _, fleet_entries = split_fleet_entries(entries)
    rows = fleet_trend(
        fleet_entries,
        threshold_pct=threshold_pct,
        min_samples=min_samples,
    )
    drifted = [row for row in rows if row["drift"]]
    return {
        "ok": not drifted,
        "threshold_pct": threshold_pct,
        "entries": len(fleet_entries),
        "rows": rows,
    }


def render_fleet_trend(report: Mapping[str, Any]) -> str:
    """ASCII table of a :func:`check_fleet_trend` report."""
    rows = report.get("rows", [])
    if not rows:
        return "(ledger has no fleet history)"
    lines = [
        f"{'scenario':<18} {'stack':<9} {'runs':>5} "
        f"{'cold p95 med/last':>18} {'GB·s med/last':>16}  status"
    ]

    def pair(metric: Mapping[str, Any]) -> str:
        med, latest = metric.get("median"), metric.get("latest")
        if med is None or latest is None:
            return "-/-"
        return f"{med:.2f}/{latest:.2f}"

    for row in rows:
        cold = row.get("cold_start_p95_ms", {})
        stranded = row.get("stranded_gb_s", {})
        if row.get("digest_drift"):
            status = "DIGEST DRIFT"
        elif cold.get("drift"):
            status = "COLD-START DRIFT"
        elif stranded.get("drift"):
            status = "STRANDING DRIFT"
        elif cold.get("median") is None and stranded.get("median") is None:
            status = "(insufficient history)"
        else:
            status = "ok"
        lines.append(
            f"{str(row.get('scenario')):<18} {str(row.get('stack')):<9} "
            f"{row.get('runs', 0):>5} {pair(cold):>18} "
            f"{pair(stranded):>16}  {status}"
        )
    return "\n".join(lines)


def bench_history(root: Path) -> List[Dict[str, Any]]:
    """Committed ``BENCH_<date>.json`` payloads under ``root``, oldest
    first (smoke files and unparseable payloads are skipped)."""
    files = sorted(
        path
        for path in root.glob("BENCH_*.json")
        if _BENCH_PATTERN.match(path.name)
    )
    payloads: List[Dict[str, Any]] = []
    for path in files:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(payload, dict) or "replay" not in payload:
            continue
        payload["_file"] = path.name
        payloads.append(payload)
    return payloads


def bench_trend(
    payloads: Sequence[Mapping[str, Any]],
    drop_pct: float = DEFAULT_BENCH_DROP_PCT,
    min_samples: int = MIN_SAMPLES,
) -> List[Dict[str, Any]]:
    """Per-replay-key throughput rows over the bench-file history.

    Each row compares the newest file's events/s against the median of
    the older files for that key; ``throughput_drift`` flags drops of
    more than ``drop_pct`` percent. Keys with fewer than ``min_samples``
    total points abstain, mirroring the wall-time gate. Only drops flag
    — faster is good news, and a key absent from the newest file (bench
    workload set changed) abstains rather than flags.
    """
    series: Dict[str, List[float]] = {}
    for payload in payloads:
        for key, row in payload.get("replay", {}).items():
            value = row.get("events_per_sec")
            if isinstance(value, (int, float)) and value > 0:
                series.setdefault(key, []).append(float(value))
    latest_keys = (
        set(payloads[-1].get("replay", {})) if payloads else set()
    )
    rows: List[Dict[str, Any]] = []
    for key, values in series.items():
        row: Dict[str, Any] = {
            "key": key,
            "samples": len(values),
            "throughput_drift": False,
            "median_events_per_sec": None,
            "latest_events_per_sec": None,
            "change_pct": None,
        }
        if key in latest_keys and len(values) >= max(2, min_samples):
            history, latest = values[:-1], values[-1]
            center = median(history)
            row["median_events_per_sec"] = center
            row["latest_events_per_sec"] = latest
            row["change_pct"] = (latest / center - 1.0) * 100.0
            row["throughput_drift"] = latest < center * (
                1.0 - drop_pct / 100.0
            )
        rows.append(row)
    return rows


def check_bench_trend(
    root: Path,
    drop_pct: float = DEFAULT_BENCH_DROP_PCT,
    min_samples: int = MIN_SAMPLES,
) -> Dict[str, Any]:
    """Throughput gate over the committed bench files under ``root``.

    ``{"ok": bool, "files": [...], "rows": [...]}`` — ``ok`` is False
    when any replay key's newest events/s dropped more than ``drop_pct``
    below its historical median. With fewer than two bench files the
    gate abstains (``ok`` True, no rows).
    """
    payloads = bench_history(root)
    rows = bench_trend(payloads, drop_pct, min_samples)
    drifted = [row for row in rows if row["throughput_drift"]]
    return {
        "ok": not drifted,
        "drop_pct": drop_pct,
        "files": [payload["_file"] for payload in payloads],
        "rows": rows,
    }


def render_bench_trend(report: Mapping[str, Any]) -> str:
    """ASCII table of a :func:`check_bench_trend` report."""
    rows = report.get("rows", [])
    if not rows:
        return "(no bench history)"
    lines = [
        f"{'workload/stack':<18} {'files':>5} {'median ev/s':>12} "
        f"{'latest ev/s':>12} {'change':>8}  status"
    ]
    for row in rows:
        med = row.get("median_events_per_sec")
        latest = row.get("latest_events_per_sec")
        change = row.get("change_pct")
        if row.get("throughput_drift"):
            status = "THROUGHPUT DRIFT"
        elif med is None:
            status = "(insufficient history)"
        else:
            status = "ok"
        med_text = f"{med:>12,.0f}" if med is not None else f"{'-':>12}"
        latest_text = (
            f"{latest:>12,.0f}" if latest is not None else f"{'-':>12}"
        )
        change_text = (
            f"{change:>+7.1f}%" if change is not None else f"{'-':>8}"
        )
        lines.append(
            f"{str(row.get('key')):<18} {row.get('samples', 0):>5} "
            f"{med_text} {latest_text} {change_text}  {status}"
        )
    return "\n".join(lines)


def render_trend(report: Mapping[str, Any]) -> str:
    """ASCII table of a :func:`check_trend` report."""
    rows = report.get("rows", [])
    if not rows:
        return "(ledger has no trend data)"
    lines = [
        f"{'workload':<14} {'stack':<9} {'runs':>5} {'live':>5} "
        f"{'median_s':>9} {'latest_s':>9} {'dev':>7}  status"
    ]
    for row in rows:
        med = row.get("median_s")
        latest = row.get("latest_s")
        dev = row.get("deviation_mads")
        if row.get("digest_drift"):
            status = "DIGEST DRIFT"
        elif row.get("time_drift"):
            status = "TIME DRIFT"
        elif row.get("live_samples", 0) < MIN_SAMPLES:
            status = "(insufficient history)"
        else:
            status = "ok"
        med_text = f"{med:>9.3f}" if med is not None else f"{'-':>9}"
        latest_text = f"{latest:>9.3f}" if latest is not None else f"{'-':>9}"
        dev_text = f"{dev:>7.2f}" if dev is not None else f"{'-':>7}"
        lines.append(
            f"{str(row.get('workload')):<14} {str(row.get('stack')):<9} "
            f"{row.get('runs', 0):>5} {row.get('live_samples', 0):>5} "
            f"{med_text} {latest_text} {dev_text}  {status}"
        )
    skipped = report.get("skipped", 0)
    if skipped:
        lines.append(f"(skipped {skipped} unrecognized ledger line(s))")
    return "\n".join(lines)
