"""Sampled hardware-event ring buffer for deep dives.

When installed (``repro run --trace`` or :func:`install_ring`), the
simulator's interesting-but-frequent hardware events — HOT alloc/free
hits, AAC bumps, bypass instantiations, TLB shootdowns — are sampled
into a fixed-size ring: every ``sample_every``-th occurrence of each
kind keeps a ``(seq, kind, value)`` record, and the ring holds only the
most recent ``capacity`` records, so memory stays bounded no matter how
long the replay runs.

The ring is off by default and the emit sites are gated so the disabled
cost is essentially zero: hot closures (the bypass ``instantiate`` path)
capture the installed ring at construction time and are built without
any ring code when none is installed; the per-alloc method sites check a
``None`` attribute. Install the ring *before* constructing the system
whose events you want.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple


class EventRing:
    """Bounded, sampled event record: ``(seq, kind, value)`` tuples.

    ``seq`` is the per-kind occurrence number of the sampled event (1 is
    the first occurrence), so consumers can recover the sampling rate and
    approximate totals. ``counts`` holds exact per-kind totals.

    With ``timestamps=True`` each *sampled* record grows a fourth field —
    the ``time.perf_counter`` reading at record time (the same clock the
    tracer uses, so the timeline exporter can place events inside spans).
    The clock is read only on the sampled 1-in-``sample_every`` path, and
    the default stays off so existing 3-tuple consumers are unaffected.
    """

    __slots__ = (
        "capacity",
        "sample_every",
        "timestamps",
        "counts",
        "_buf",
        "_head",
        "_clock",
    )

    def __init__(
        self,
        capacity: int = 4096,
        sample_every: int = 64,
        timestamps: bool = False,
    ) -> None:
        if capacity <= 0 or sample_every <= 0:
            raise ValueError("capacity and sample_every must be positive")
        self.capacity = capacity
        self.sample_every = sample_every
        self.timestamps = timestamps
        self.counts: Dict[str, int] = {}
        self._buf: List[Optional[Tuple]] = [None] * capacity
        self._head = 0
        self._clock = time.perf_counter

    def record(self, kind: str, value: int = 0) -> None:
        """Count one occurrence of ``kind``; sample it into the ring."""
        counts = self.counts
        seen = counts.get(kind, 0) + 1
        counts[kind] = seen
        if seen % self.sample_every:
            return
        if self.timestamps:
            record = (seen, kind, value, self._clock())
        else:
            record = (seen, kind, value)
        self._buf[self._head % self.capacity] = record
        self._head += 1

    def events(self) -> List[Tuple]:
        """Sampled records, oldest first (4-tuples when timestamping)."""
        if self._head <= self.capacity:
            return [e for e in self._buf[: self._head] if e is not None]
        start = self._head % self.capacity
        rotated = self._buf[start:] + self._buf[:start]
        return [e for e in rotated if e is not None]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (ledger/metrics sidecar payload)."""
        return {
            "capacity": self.capacity,
            "sample_every": self.sample_every,
            "timestamps": self.timestamps,
            "counts": dict(self.counts),
            "events": [list(e) for e in self.events()],
        }

    def clear(self) -> None:
        self.counts = {}
        self._buf = [None] * self.capacity
        self._head = 0


#: The installed ring, or None (the default: all emit sites disabled).
RING: Optional[EventRing] = None


def get_ring() -> Optional[EventRing]:
    """The installed ring, or None when event sampling is off."""
    return RING


def install_ring(ring: Optional[EventRing]) -> Optional[EventRing]:
    """Install (or, with None, remove) the process-wide event ring.

    Returns the previously installed ring. Systems capture the ring at
    construction, so install it before building the system under study.
    """
    global RING
    previous = RING
    RING = ring
    return previous
