"""The mmap/munmap system-call interface (§2.1).

``mmap`` reserves virtual addresses and VMA metadata without physical
backing (unless MAP_POPULATE). ``munmap`` tears down the VMA, walks the
covered PTEs, frees physical pages, and releases emptied page-table pages.
Both charge the syscall entry/exit cost plus the kernel work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.params import PAGE_SHIFT, PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.sim.machine import Core


class SyscallInterface:
    """Kernel entry points used by the userspace allocators."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.stats = kernel.machine.stats.scoped("kernel.syscall")

    def mmap(
        self,
        core: "Core",
        process: "Process",
        length: int,
        populate: bool = False,
    ) -> int:
        """Reserve ``length`` bytes of anonymous memory; return the base.

        With ``populate`` (MAP_POPULATE, §6.6) every page is faulted in
        eagerly inside the call, trading syscall-time work and footprint
        for the absence of later faults.
        """
        costs = self.kernel.machine.costs
        vma = process.vmas.reserve(length, populate)
        core.charge(costs.syscall_entry_exit + costs.mmap_base, "kernel_page")
        self.stats.add("mmap_calls")
        self.stats.add("mmap_bytes", vma.end - vma.start)
        self.kernel.machine.dram.record_bulk_bytes(512, write=False)
        if populate:
            self._populate(core, process, vma)
        return vma.start

    def _populate(self, core: "Core", process: "Process", vma) -> None:
        """MAP_POPULATE batch backing (§6.6): a tight kernel loop maps and
        clears every page with no per-page trap — far cheaper per page
        than a fault, but it backs pages that may never be used."""
        costs = self.kernel.machine.costs
        for page in range(vma.pages):
            vpn = (vma.start >> PAGE_SHIFT) + page
            pfn = self.kernel.buddy.alloc(0)
            process.charge_user_page()
            process.page_table.map(vpn, pfn)
        core.charge(vma.pages * costs.populate_per_page, "kernel_page")
        # Zeroing streams through non-temporal stores straight to DRAM.
        self.kernel.machine.dram.record_bulk_bytes(
            vma.pages * PAGE_SIZE, write=True
        )
        self.stats.add("populated_pages", vma.pages)

    def madvise_dontneed(
        self, core: "Core", process: "Process", addr: int, length: int
    ) -> int:
        """MADV_DONTNEED over ``[addr, addr+length)``: drop physical backing
        but keep the VMA. Next access refaults. This is how allocator decay
        purging (jemalloc) returns memory to the OS; returns pages dropped.
        """
        costs = self.kernel.machine.costs
        cycles = costs.syscall_entry_exit + costs.munmap_base // 2
        dropped = 0
        start_vpn = addr >> PAGE_SHIFT
        for page in range(-(-length // PAGE_SIZE)):
            vpn = start_vpn + page
            if process.page_table.walk(vpn) is None:
                continue
            pfn, _tables = process.page_table.unmap(vpn)
            self.kernel.buddy.free(pfn)
            process.credit_user_page()
            dropped += 1
            core.tlb.invalidate(vpn)
        cycles += dropped * (costs.munmap_per_page + costs.buddy_free)
        core.charge(cycles, "kernel_page")
        self.stats.add("madvise_calls")
        self.stats.add("madvise_pages", dropped)
        return dropped

    def munmap(self, core: "Core", process: "Process", addr: int) -> None:
        """Unmap the mapping that starts at ``addr``.

        Walks the PTEs of the range, frees backed pages to the buddy
        allocator, and releases page-table pages emptied by the teardown.
        """
        costs = self.kernel.machine.costs
        vma = process.vmas.remove(addr)
        cycles = costs.syscall_entry_exit + costs.munmap_base
        freed_pages = 0
        for page in range(vma.pages):
            vpn = (vma.start >> PAGE_SHIFT) + page
            if process.page_table.walk(vpn) is None:
                continue  # never faulted in
            pfn, _tables = process.page_table.unmap(vpn)
            self.kernel.buddy.free(pfn)
            process.credit_user_page()
            freed_pages += 1
            core.tlb.invalidate(vpn)
        cycles += freed_pages * (costs.munmap_per_page + costs.buddy_free)
        core.charge(cycles, "kernel_page")
        self.stats.add("munmap_calls")
        self.stats.add("munmap_pages", freed_pages)
        self.kernel.machine.dram.record_bulk_bytes(
            256 + 64 * freed_pages, write=False
        )
