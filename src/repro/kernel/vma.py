"""Virtual memory area (VMA) management.

``mmap`` (§2.1 step 4) finds an unused virtual range and records mapping
metadata without backing it physically; the fault handler later consults
that metadata. The manager keeps VMAs sorted by start address and hands out
fresh ranges with a bump pointer, which is how anonymous mmap behaves for
the short-lived processes modeled here.

Kernel metadata cost: each VMA consumes a slab object; Fig. 11 credits
Memento with kernel-memory savings partly from needing fewer VMAs, so the
manager tracks the aggregate number of VMA objects ever created.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.params import PAGE_SIZE

#: Kernel slab bytes consumed per anonymous mapping: vm_area_struct
#: (~232 B) plus anon_vma, anon_vma_chain, and rmap interval-tree nodes.
VMA_SLAB_BYTES = 640


@dataclass
class Vma:
    """One mapped virtual range ``[start, end)`` (page aligned)."""

    start: int
    end: int
    populate: bool = False

    def __post_init__(self) -> None:
        if self.start % PAGE_SIZE or self.end % PAGE_SIZE:
            raise ValueError("VMA bounds must be page aligned")
        if self.end <= self.start:
            raise ValueError("VMA must be non-empty")

    @property
    def pages(self) -> int:
        return (self.end - self.start) // PAGE_SIZE

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class VmaManager:
    """Sorted VMA set plus a bump pointer for fresh ranges."""

    mmap_base: int = 0x7F00_0000_0000
    _vmas: List[Vma] = field(default_factory=list)
    _starts: List[int] = field(default_factory=list)
    _bump: int = 0
    aggregate_created: int = 0

    def __post_init__(self) -> None:
        self._bump = self.mmap_base

    def reserve(self, length: int, populate: bool = False) -> Vma:
        """Create a VMA of ``length`` bytes at a fresh address."""
        if length <= 0:
            raise ValueError("length must be positive")
        length = -(-length // PAGE_SIZE) * PAGE_SIZE
        vma = Vma(self._bump, self._bump + length, populate)
        self._bump += length
        index = bisect.bisect_left(self._starts, vma.start)
        self._vmas.insert(index, vma)
        self._starts.insert(index, vma.start)
        self.aggregate_created += 1
        return vma

    def find(self, addr: int) -> Optional[Vma]:
        """Return the VMA covering ``addr``, or None (→ SIGSEGV)."""
        index = bisect.bisect_right(self._starts, addr) - 1
        if index >= 0 and self._vmas[index].contains(addr):
            return self._vmas[index]
        return None

    def remove(self, start: int) -> Vma:
        """Remove the VMA starting exactly at ``start`` (munmap of a whole
        prior mapping, the pattern userspace allocators use)."""
        index = bisect.bisect_left(self._starts, start)
        if index >= len(self._starts) or self._starts[index] != start:
            raise KeyError(f"no VMA starts at {start:#x}")
        del self._starts[index]
        return self._vmas.pop(index)

    def __iter__(self):
        return iter(self._vmas)

    def __len__(self) -> int:
        return len(self._vmas)

    @property
    def live_bytes(self) -> int:
        return sum(vma.end - vma.start for vma in self._vmas)

    def metadata_pages(self) -> int:
        """Kernel pages consumed by live VMA slab objects (rounded up)."""
        return -(-len(self._vmas) * VMA_SLAB_BYTES // PAGE_SIZE)

    def aggregate_metadata_pages(self) -> int:
        """Aggregate kernel pages ever used for VMA objects (Fig. 11)."""
        return -(-self.aggregate_created * VMA_SLAB_BYTES // PAGE_SIZE)
