"""The kernel facade: physical memory, processes, syscalls, faults.

Owns the buddy allocator over the machine's frame space and wires together
the syscall interface, the fault handler, and process lifecycle (creation,
context switch, exit-time batch teardown — the path that frees the
"long-lived" allocations of Fig. 3 when a function exits).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kernel.buddy import BuddyAllocator
from repro.kernel.fault import PageFaultHandler
from repro.kernel.process import Process
from repro.kernel.syscalls import SyscallInterface
from repro.obs import profile as obs_profile
from repro.sim.machine import Core, Machine


class Kernel:
    """OS substrate bound to one :class:`~repro.sim.machine.Machine`."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.buddy = BuddyAllocator(
            base=0,
            total_frames=machine.frames.total_frames,
            stats=machine.stats,
        )
        self.syscalls = SyscallInterface(self)
        self.fault_handler = PageFaultHandler(self)
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._running: Optional[Process] = None
        self.stats = machine.stats.scoped("kernel")
        self._warm_prefaulted = self.stats.counter("warm_prefaulted_pages")
        # Cycle-attribution cells, bound at construction (obs/profile.py).
        profile = obs_profile.PROFILE
        if profile is None:
            self._p_switch = None
            self._p_walk = None
            self._h_walk = None
        else:
            self._p_switch = profile.cell("kernel.switch")
            self._p_walk = profile.cell("walk.page_walk")
            self._h_walk = profile.hist("op.page_walk")

    # -- frame helpers for page tables ------------------------------------

    def alloc_kernel_page(self) -> int:
        """Allocate one frame for kernel metadata (page-table pages)."""
        pfn = self.buddy.alloc(0)
        self.machine.frames.charge("kernel")
        return pfn

    def free_kernel_page(self, pfn: int) -> None:
        self.buddy.free(pfn)
        self.machine.frames.credit("kernel")

    # -- process lifecycle -------------------------------------------------

    def create_process(self) -> Process:
        """Create a process (one page-table root is charged immediately)."""
        process = Process(self._next_pid, self)
        self.processes[process.pid] = process
        self._next_pid += 1
        self.stats.add("processes_created")
        return process

    def context_switch(self, core: Core, to: Process) -> None:
        """Switch ``core`` to ``to``: direct cost + TLB flush (+ HOT flush
        cost if the outgoing process used Memento, per §6.6)."""
        costs = self.machine.costs
        cycles = costs.context_switch
        outgoing = self._running
        if outgoing is not None and outgoing.memento is not None:
            allocator = outgoing.memento.object_allocator
            flushed = allocator.flush_for_switch(core)
            cycles += flushed * costs.hot_flush_per_entry
        core.context_switch_flush()
        core.charge(cycles, "kernel_other")
        if self._p_switch is not None:
            self._p_switch.add(cycles)
        self._running = to
        self.stats.add("context_switches")

    def exit_process(self, core: Core, process: Process) -> None:
        """Tear down a process at function exit.

        The OS batch-frees everything still mapped: user pages, page
        tables, VMAs, and (with Memento) notifies the hardware page
        allocator to release its arenas and pool pages.
        """
        if process.exited:
            raise ValueError(f"process {process.pid} already exited")
        costs = self.machine.costs
        freed_pfns, _interior = process.page_table.clear()
        for pfn in freed_pfns:
            self.buddy.free(pfn)
        if freed_pfns:
            process.credit_user_page(len(freed_pfns))
        cycles = (
            costs.syscall_entry_exit
            + costs.munmap_base
            + len(freed_pfns) * (costs.munmap_per_page + costs.buddy_free)
        )
        core.charge(cycles, "kernel_page")
        if process.memento is not None:
            process.memento.release_all(core)
        process.exited = True
        if self._running is process:
            self._running = None
        self.stats.add("processes_exited")
        self.stats.add("exit_freed_pages", len(freed_pfns))

    def prefault_warm(self, process: Process, vaddr: int) -> int:
        """Back a page without charging cycles or fault stats.

        Models a warm-started container whose previous invocations already
        faulted the page in: the physical page exists before the measured
        run begins. Physical accounting still happens. Runs once per heap
        page at warm-allocator init (hundreds of pages before the first
        malloc returns), hence the interned counter and single walk.
        """
        from repro.sim.params import PAGE_SHIFT

        vpn = vaddr >> PAGE_SHIFT
        pfn = process.page_table.walk(vpn)
        if pfn is not None:
            return pfn
        pfn = self.buddy.alloc(0)
        process.charge_user_page()
        process.page_table.map(vpn, pfn)
        self._warm_prefaulted.pending += 1
        return pfn

    # -- memory access (baseline translation path) --------------------------

    def translate(
        self, core: Core, process: Process, vaddr: int
    ) -> Optional[int]:
        """Kernel-page-table walk for ``vaddr``'s page.

        Charges the walk's memory accesses through the cache hierarchy (one
        per level, hitting for hot upper levels). Returns the frame or None
        if unmapped (caller invokes the fault handler).
        """
        from repro.sim.params import PAGE_SHIFT

        vpn = vaddr >> PAGE_SHIFT
        walk_cycles = 0
        for node_pfn in process.page_table.walk_path(vpn):
            result = core.caches.access_line(node_pfn << 6)
            core.charge(result.cycles, "walk")
            walk_cycles += result.cycles
        if self._p_walk is not None:
            self._p_walk.add(walk_cycles)
            self._h_walk.record(walk_cycles)
        return process.page_table.walk(vpn)
