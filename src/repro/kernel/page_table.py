"""Four-level (x86-64 style) page tables.

Virtual page numbers are split into four 9-bit indices (PGD/PUD/PMD/PTE).
Each table node occupies one physical page frame obtained from a caller
supplied frame source, so kernel page usage (and Memento's pool usage) is
charged to the right ledger, and page walks can be simulated as real memory
accesses to the node frames. The same structure backs both the kernel's
CR3-rooted tables and Memento's MPTR-rooted hardware-managed tables (§3.2).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

LEVELS = 4
INDEX_BITS = 9
INDEX_MASK = (1 << INDEX_BITS) - 1


def split_vpn(vpn: int) -> Tuple[int, int, int, int]:
    """Split a virtual page number into (PGD, PUD, PMD, PTE) indices."""
    return (
        (vpn >> (3 * INDEX_BITS)) & INDEX_MASK,
        (vpn >> (2 * INDEX_BITS)) & INDEX_MASK,
        (vpn >> INDEX_BITS) & INDEX_MASK,
        vpn & INDEX_MASK,
    )


class _Node:
    """One page-table page: a sparse array of up to 512 entries."""

    __slots__ = ("entries", "pfn")

    def __init__(self, pfn: int) -> None:
        self.entries: dict = {}
        self.pfn = pfn


class PageTable:
    """A 4-level page table with per-node frame accounting.

    ``alloc_table_page()`` must return a physical frame number for each new
    table page (the root included); ``free_table_page(pfn)`` is called when
    a table page is torn down.
    """

    def __init__(
        self,
        alloc_table_page: Optional[Callable[[], int]] = None,
        free_table_page: Optional[Callable[[int], None]] = None,
    ) -> None:
        self._alloc_page = alloc_table_page or self._default_source().__next__
        self._free_page = free_table_page or (lambda pfn: None)
        self.table_pages = 0
        self.mapped_pages = 0
        self.root = self._new_node()

    @staticmethod
    def _default_source() -> Iterator[int]:
        """Synthetic frame numbers for standalone use (tests)."""
        frame = 1 << 40
        while True:
            yield frame
            frame += 1

    def _new_node(self) -> _Node:
        node = _Node(self._alloc_page())
        self.table_pages += 1
        return node

    def _drop_node(self, node: _Node) -> None:
        self.table_pages -= 1
        self._free_page(node.pfn)

    def walk(self, vpn: int) -> Optional[int]:
        """Translate ``vpn``; return the mapped frame or None."""
        node = self.root
        indices = split_vpn(vpn)
        for index in indices[:-1]:
            child = node.entries.get(index)
            if child is None:
                return None
            node = child
        return node.entries.get(indices[-1])

    def walk_path(self, vpn: int) -> List[int]:
        """Frames of the table nodes a walk of ``vpn`` touches, root first.

        The walker issues one memory access per level; the harness replays
        these through the cache hierarchy so upper-level nodes enjoy
        realistic locality.
        """
        frames = [self.root.pfn]
        node = self.root
        for index in split_vpn(vpn)[:-1]:
            child = node.entries.get(index)
            if child is None:
                break
            node = child
            frames.append(node.pfn)
        return frames

    def map(self, vpn: int, pfn: int) -> int:
        """Install ``vpn -> pfn``; return the number of table pages created.

        Remapping an already-mapped page raises — the kernel fault handler
        and Memento's walker must never double-map.
        """
        created = 0
        node = self.root
        indices = split_vpn(vpn)
        for index in indices[:-1]:
            child = node.entries.get(index)
            if child is None:
                child = self._new_node()
                node.entries[index] = child
                created += 1
            node = child
        last = indices[-1]
        if last in node.entries:
            raise ValueError(f"vpn {vpn:#x} is already mapped")
        node.entries[last] = pfn
        self.mapped_pages += 1
        return created

    def unmap(self, vpn: int) -> Tuple[int, int]:
        """Remove the mapping for ``vpn``.

        Returns ``(pfn, table_pages_freed)``; intermediate nodes emptied by
        the unmap are torn down, as munmap does (§2.1). Raises KeyError if
        the page was not mapped.
        """
        indices = split_vpn(vpn)
        path = []
        node = self.root
        for index in indices[:-1]:
            child = node.entries.get(index)
            if child is None:
                raise KeyError(f"vpn {vpn:#x} is not mapped")
            path.append((node, index))
            node = child
        last = indices[-1]
        if last not in node.entries:
            raise KeyError(f"vpn {vpn:#x} is not mapped")
        pfn = node.entries.pop(last)
        self.mapped_pages -= 1
        freed = 0
        # Tear down now-empty intermediate tables bottom-up (never the root).
        child = node
        for parent, index in reversed(path):
            if child.entries:
                break
            del parent.entries[index]
            self._drop_node(child)
            freed += 1
            child = parent
        return pfn, freed

    def mappings(self) -> Iterator[Tuple[int, int]]:
        """Yield every ``(vpn, pfn)`` mapping (teardown/test helper)."""

        def recurse(node: _Node, prefix: int, level: int):
            for index, entry in node.entries.items():
                if level == LEVELS - 1:
                    yield (prefix << INDEX_BITS) | index, entry
                else:
                    yield from recurse(
                        entry, (prefix << INDEX_BITS) | index, level + 1
                    )

        yield from recurse(self.root, 0, 0)

    def clear(self) -> Tuple[List[int], int]:
        """Tear down the whole table (process exit / batch free).

        Returns ``(freed_pfns, table_pages_freed)``. The root page remains
        allocated — an empty address space still has a root.
        """
        freed_pfns = [pfn for _, pfn in self.mappings()]

        def drop_children(node: _Node, level: int) -> int:
            total = 0
            if level < LEVELS - 1:
                for child in node.entries.values():
                    total += 1 + drop_children(child, level + 1)
                    # Route through _drop_node so the node count and the
                    # frame source stay in lockstep — a direct _free_page
                    # with a bulk count adjustment afterwards is how the
                    # two ledgers drift apart (audit rule: pool-balance).
                    self._drop_node(child)
            return total

        interior = drop_children(self.root, 0)
        self.mapped_pages = 0
        self.root.entries.clear()
        return freed_pfns, interior

    def release_root(self) -> None:
        """Return the root page to the frame source (final teardown).

        Only legal on an empty table: callers must ``clear()`` (or unmap
        everything) first. After this the table must not be used again.
        Centralising the root teardown here keeps ``table_pages`` and the
        frame source in lockstep (audit rule: pool-balance) instead of
        each caller freeing the root frame and adjusting the counter by
        hand.
        """
        if self.root.entries:
            raise ValueError("release_root() on a non-empty page table")
        self._drop_node(self.root)
