"""Binary buddy physical page allocator.

The kernel's physical allocator (§2.1 step 7) hands out naturally-aligned
power-of-two blocks of page frames, splitting larger blocks on demand and
coalescing freed buddies. Frame numbers are plain ints in
``[base, base + total_frames)``.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.sim.stats import ScopedStats, Stats

MAX_ORDER = 10  # largest block: 2**10 pages = 4 MB, matching Linux


class OutOfMemoryError(MemoryError):
    """The buddy allocator has no block large enough for the request."""


class BuddyAllocator:
    """Buddy allocator over a contiguous frame range.

    ``free_lists[order]`` holds the start frames of free blocks of size
    ``2**order`` pages. Blocks are naturally aligned relative to ``base``,
    which makes the buddy of block ``b`` at order ``k`` simply
    ``b XOR (1 << k)`` (in base-relative coordinates).
    """

    def __init__(
        self, base: int, total_frames: int, stats: Stats | ScopedStats
    ) -> None:
        if total_frames <= 0:
            raise ValueError("total_frames must be positive")
        self.base = base
        self.total_frames = total_frames
        self.stats = (
            stats.scoped("buddy") if isinstance(stats, Stats) else stats
        )
        self.free_lists: List[Set[int]] = [
            set() for _ in range(MAX_ORDER + 1)
        ]
        self._allocated: Dict[int, int] = {}  # start frame -> order
        self._seed_free_lists()

    def _seed_free_lists(self) -> None:
        """Carve the initial range into maximal aligned free blocks."""
        offset = 0
        remaining = self.total_frames
        while remaining > 0:
            order = MAX_ORDER
            while order > 0 and (
                (1 << order) > remaining or offset % (1 << order) != 0
            ):
                order -= 1
            self.free_lists[order].add(self.base + offset)
            offset += 1 << order
            remaining -= 1 << order

    def alloc(self, order: int = 0) -> int:
        """Allocate a block of ``2**order`` frames; return its start frame."""
        if not 0 <= order <= MAX_ORDER:
            raise ValueError(f"order {order} out of range")
        search = order
        while search <= MAX_ORDER and not self.free_lists[search]:
            search += 1
        if search > MAX_ORDER:
            raise OutOfMemoryError(
                f"no free block of order {order} or larger"
            )
        block = min(self.free_lists[search])
        self.free_lists[search].discard(block)
        # Split down to the requested order, freeing the upper halves.
        while search > order:
            search -= 1
            upper = block + (1 << search)
            self.free_lists[search].add(upper)
            self.stats.add("splits")
        self._allocated[block] = order
        self.stats.add("allocs")
        self.stats.add("frames_out", 1 << order)
        return block

    def alloc_pages(self, pages: int) -> List[int]:
        """Allocate ``pages`` individual frames (order-0 blocks)."""
        return [self.alloc(0) for _ in range(pages)]

    def free(self, block: int, order: int | None = None) -> None:
        """Free a previously allocated block, coalescing with buddies."""
        if block not in self._allocated:
            raise ValueError(f"frame {block} is not an allocated block")
        actual = self._allocated[block]
        if order is not None and order != actual:
            raise ValueError(
                f"block {block} was allocated at order {actual}, "
                f"freed at {order}"
            )
        del self._allocated[block]
        self.stats.add("frees")
        self.stats.add("frames_out", -(1 << actual))
        rel = block - self.base
        current = rel
        while actual < MAX_ORDER:
            buddy = current ^ (1 << actual)
            if self.base + buddy not in self.free_lists[actual]:
                break
            self.free_lists[actual].discard(self.base + buddy)
            current = min(current, buddy)
            actual += 1
            self.stats.add("coalesces")
        self.free_lists[actual].add(self.base + current)

    @property
    def free_frames(self) -> int:
        """Total frames currently on the free lists."""
        return sum(
            len(blocks) << order
            for order, blocks in enumerate(self.free_lists)
        )

    @property
    def allocated_frames(self) -> int:
        return self.total_frames - self.free_frames

    def check_invariants(self) -> None:
        """Assert structural invariants (used by property tests).

        Free blocks must be disjoint, in-range, aligned, and together with
        allocated blocks exactly tile the managed range.
        """
        seen: Set[int] = set()
        for order, blocks in enumerate(self.free_lists):
            size = 1 << order
            for block in blocks:
                rel = block - self.base
                if rel % size != 0:
                    raise AssertionError(
                        f"misaligned free block {block} at order {order}"
                    )
                span = set(range(block, block + size))
                if span & seen:
                    raise AssertionError(f"overlapping free block {block}")
                seen |= span
        for block, order in self._allocated.items():
            span = set(range(block, block + (1 << order)))
            if span & seen:
                raise AssertionError(
                    f"allocated block {block} overlaps a free block"
                )
            seen |= span
        expected = set(range(self.base, self.base + self.total_frames))
        if seen != expected:
            raise AssertionError("free+allocated blocks do not tile range")
