"""Operating-system substrate.

Models the kernel paths the paper instruments (§2.1): ``mmap``/``munmap``
virtual-address management, demand paging through the page-fault handler,
the buddy physical page allocator, 4-level page tables, and process
context switches. These are the "kernel half" of memory-management cycles
that Memento's hardware page allocator eliminates.
"""

from repro.kernel.buddy import BuddyAllocator
from repro.kernel.fault import PageFaultError
from repro.kernel.kernel import Kernel
from repro.kernel.page_table import PageTable
from repro.kernel.process import Process
from repro.kernel.vma import Vma, VmaManager

__all__ = [
    "BuddyAllocator",
    "Kernel",
    "PageFaultError",
    "PageTable",
    "Process",
    "Vma",
    "VmaManager",
]
