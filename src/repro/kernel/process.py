"""Process model: address space, page table, and per-process accounting.

Serverless functions run one process per container instance. The process
owns its VMA set and page table; page frames it consumes are charged to the
machine's frame ledger as ``user`` (heap data) or ``kernel`` (page tables
and VMA metadata), the split Fig. 11 reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.kernel.page_table import PageTable
from repro.kernel.vma import VmaManager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import MementoProcessContext
    from repro.kernel.kernel import Kernel


class Process:
    """One simulated process (function instance / platform daemon)."""

    def __init__(self, pid: int, kernel: "Kernel") -> None:
        self.pid = pid
        self.kernel = kernel
        # Each process gets a 1 TB mmap window; bases stay canonical for
        # hundreds of pids.
        self.vmas = VmaManager(mmap_base=0x6000_0000_0000 + pid * (1 << 40))
        self.page_table = PageTable(
            alloc_table_page=kernel.alloc_kernel_page,
            free_table_page=kernel.free_kernel_page,
        )
        #: Attached by the Memento runtime when the OS reserves a Memento
        #: region for this process (§3.2); None on the baseline.
        self.memento: Optional["MementoProcessContext"] = None
        self.user_pages_live = 0
        self.user_pages_aggregate = 0
        self.exited = False

    def charge_user_page(self, pages: int = 1) -> None:
        """Account heap pages faulted in for this process."""
        self.user_pages_live += pages
        self.user_pages_aggregate += pages
        self.kernel.machine.frames.charge("user", pages)

    def credit_user_page(self, pages: int = 1) -> None:
        self.user_pages_live -= pages
        self.kernel.machine.frames.credit("user", pages)

    def kernel_pages_live(self) -> int:
        """Page-table pages + VMA metadata pages currently held."""
        return self.page_table.table_pages + self.vmas.metadata_pages()

    def kernel_pages_aggregate(self) -> int:
        """Aggregate kernel pages for Fig. 11.

        Page-table pages are counted through the frame ledger as they are
        created; VMA metadata is derived from the aggregate VMA count.
        """
        return self.page_table.table_pages + self.vmas.aggregate_metadata_pages()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process(pid={self.pid}, user_pages={self.user_pages_live})"
