"""Demand-paging page-fault handler (§2.1 steps 6-7).

On a first access to an mmap'd page the hardware raises a fault; the
handler finds the covering VMA, requests a free physical page from the
buddy allocator, zeroes it, and installs the PTE. All of that executes in
the kernel on the function's critical path — the cost Memento's hardware
page allocator removes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs import profile as obs_profile
from repro.sim.params import PAGE_SHIFT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.sim.machine import Core


class PageFaultError(Exception):
    """Access to an address no VMA covers (the process would SIGSEGV)."""


class PageFaultHandler:
    """Kernel page-fault servicing with cycle and traffic accounting."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.stats = kernel.machine.stats.scoped("kernel.fault")
        # Interned cells: the handler runs for every first touch of a page
        # on the baseline stack — one of the hottest kernel-side emitters.
        self._faults = self.stats.counter("faults")
        self._fault_cycles = self.stats.counter("cycles")
        self._spurious = self.stats.counter("spurious")
        self._segv = self.stats.counter("segv")
        # Cycle-attribution cell/histogram, bound at construction (one
        # None test per fault when disabled; see obs/profile.py).
        profile = obs_profile.PROFILE
        if profile is None:
            self._p_fault = None
            self._h_fault = None
        else:
            self._p_fault = profile.cell("kernel.fault")
            self._h_fault = profile.hist("op.page_fault")

    def handle(
        self, core: "Core", process: "Process", vaddr: int
    ) -> int:
        """Service a fault at ``vaddr``; return the newly mapped frame.

        Charges the full kernel path: trap + handler + buddy allocation +
        page zeroing + PTE install. Raises :class:`PageFaultError` for
        addresses outside any VMA.
        """
        costs = self.kernel.machine.costs
        vma = process.vmas.find(vaddr)
        if vma is None:
            self._segv.add()
            raise PageFaultError(f"no VMA covers {vaddr:#x}")

        vpn = vaddr >> PAGE_SHIFT
        existing = process.page_table.walk(vpn)
        if existing is not None:
            # Spurious fault (page already backed, e.g. populated or
            # raced): the handler returns after the lookup.
            spurious_cycles = costs.page_fault // 4
            core.charge(spurious_cycles, "kernel_page")
            if self._p_fault is not None:
                self._p_fault.add(spurious_cycles)
                self._h_fault.record(spurious_cycles)
            self._spurious.add()
            return existing
        pfn = self.kernel.buddy.alloc(0)
        process.charge_user_page()
        created_tables = process.page_table.map(vpn, pfn)

        cycles = (
            costs.page_fault
            + costs.buddy_alloc
            + costs.page_zero
            + created_tables * costs.buddy_alloc
        )
        core.charge(cycles, "kernel_page")
        if self._p_fault is not None:
            self._p_fault.add(cycles)
            self._h_fault.record(cycles)
        self._faults.add()
        self._fault_cycles.add(cycles)
        # Zeroing the fresh page writes its 64 lines through the caches;
        # the faulting access then hits warm lines, and the zeroes reach
        # DRAM later as dirty evictions.
        core.caches.zero_fill_page(pfn << PAGE_SHIFT)
        # Handler instruction/data footprint reaches DRAM for short-lived
        # processes whose kernel paths are cold.
        self.kernel.machine.dram.record_bulk_bytes(1024, write=False)
        return pfn
