"""Calibration helper: measure per-workload metrics and suggest
compute_per_alloc values that land each workload's speedup on its paper
target. Run after structural changes; bake accepted values into the
workload specs."""
import sys
from repro.harness.experiment import _run_cached, run_workload
from repro.workloads.registry import all_workloads, get_workload

# Paper Fig. 8 targets (approximate bar readings).
TARGETS = {
    "html": 1.28, "ir": 1.10, "bfs": 1.15, "dna": 1.12, "aes": 1.20,
    "fr": 1.10, "jl": 1.13, "jd": 1.12, "mk": 1.15,
    "US": 1.15, "UM": 1.17, "CM": 1.18, "MI": 1.14,
    "html-go": 1.18, "bfs-go": 1.14, "aes-go": 1.12,
    "Redis": 1.11, "Memcached": 1.065, "Silo": 1.075, "SQLite3": 1.05,
    "up": 1.05, "deploy": 1.07, "invoke": 1.04,
}

names = sys.argv[1:] or list(TARGETS)
for name in names:
    spec = get_workload(name)
    r = run_workload(spec)
    target = TARGETS[name]
    delta = r.baseline.total_cycles - r.memento.total_cycles
    tb_star = delta * target / (target - 1)
    adj = (tb_star - r.baseline.total_cycles) / spec.num_allocs
    suggested = int(spec.compute_per_alloc + adj)
    uk = r.user_kernel_split()
    print(f"{name:10s} sp={r.speedup:.3f} target={target:.3f} "
          f"suggest_compute={suggested:5d} (now {spec.compute_per_alloc}) "
          f"uk={uk['user']:.2f}/{uk['kernel']:.2f} "
          f"bw={r.bandwidth_reduction:.2f} "
          f"bd={ {k: round(v,2) for k,v in r.breakdown().items()} }")
