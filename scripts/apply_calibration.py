"""Run one calibration iteration and bake suggested compute_per_alloc
values into the workload spec files."""
import pathlib
import re
import sys

from repro.harness.experiment import run_workload
from repro.workloads.registry import all_workloads

TARGETS = {
    "html": 1.28, "ir": 1.10, "bfs": 1.15, "dna": 1.12, "aes": 1.20,
    "fr": 1.10, "jl": 1.13, "jd": 1.12, "mk": 1.15,
    "US": 1.15, "UM": 1.17, "CM": 1.18, "MI": 1.14,
    "html-go": 1.18, "bfs-go": 1.14, "aes-go": 1.12,
    "Redis": 1.11, "Memcached": 1.065, "Silo": 1.075, "SQLite3": 1.05,
    "up": 1.05, "deploy": 1.07, "invoke": 1.04,
}

FILES = [
    pathlib.Path("src/repro/workloads/functions.py"),
    pathlib.Path("src/repro/workloads/dataproc.py"),
    pathlib.Path("src/repro/workloads/platform_ops.py"),
]

suggestions = {}
for spec in all_workloads():
    r = run_workload(spec)
    target = TARGETS[spec.name]
    delta = r.baseline.total_cycles - r.memento.total_cycles
    tb_star = delta * target / (target - 1)
    adj = (tb_star - r.baseline.total_cycles) / spec.num_allocs
    suggestions[spec.name] = max(40, int(spec.compute_per_alloc + adj))
    print(f"{spec.name:10s} sp={r.speedup:.3f} -> compute {spec.compute_per_alloc} => {suggestions[spec.name]}")

if "--write" in sys.argv:
    for path in FILES:
        text = path.read_text()
        # Each spec block: name="X" ... compute_per_alloc=N
        def fix(match):
            block = match.group(0)
            name = re.search(r'name="([^"]+)"', block).group(1)
            if name in suggestions:
                block = re.sub(r"compute_per_alloc=\d+",
                               f"compute_per_alloc={suggestions[name]}", block)
            return block
        text = re.sub(r'WorkloadSpec\((?:[^()]|\([^()]*\))*\)', fix, text)
        path.write_text(text)
    print("written")
