#!/usr/bin/env python3
"""Run one serverless function end-to-end on both stacks (Fig. 8/9 view).

Replays a paper workload (default: dynamic-html) through the baseline
software stack and through Memento, then prints the speedup, the Fig. 9
savings breakdown, DRAM traffic, memory usage, and the AWS pricing effect
for that single function.

Run:  python examples/serverless_function_study.py [workload-name]
"""

import sys

from repro.analysis.pricing import PricingModel
from repro.analysis.report import render_table
from repro.harness.experiment import run_workload
from repro.workloads.registry import get_workload


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "html"
    spec = get_workload(name)
    print(f"workload: {spec.name} ({spec.language}, "
          f"{spec.num_allocs:,} allocations)")

    result = run_workload(spec)
    base, mem = result.baseline, result.memento

    print(render_table(
        ["metric", "baseline", "memento"],
        [
            ["total cycles", f"{base.total_cycles:,.0f}",
             f"{mem.total_cycles:,.0f}"],
            ["mm cycles", f"{base.mm_cycles:,.0f}",
             f"{mem.mm_cycles:,.0f}"],
            ["DRAM bytes", f"{base.dram_bytes:,.0f}",
             f"{mem.dram_bytes:,.0f}"],
            ["user pages (aggregate)", base.user_pages_aggregate,
             mem.user_pages_aggregate],
            ["kernel pages (aggregate)", base.kernel_pages_aggregate,
             mem.kernel_pages_aggregate],
        ],
        title=f"{spec.name}: baseline vs Memento",
    ))

    print(f"\nspeedup                 : {result.speedup:.3f}x")
    print(f"mm share of runtime     : {result.mm_fraction_of_runtime:.1%}")
    split = result.user_kernel_split()
    print(f"baseline mm user/kernel : {split['user']:.0%}/"
          f"{split['kernel']:.0%}")
    print(f"bandwidth reduction     : {result.bandwidth_reduction:.1%}")
    print("savings breakdown       : "
          + ", ".join(f"{k} {v:.0%}" for k, v in result.breakdown().items()))
    print(f"HOT hit rates           : alloc "
          f"{mem.hot_alloc_hit_rate:.3f}, free {mem.hot_free_hit_rate:.3f}")

    pricing = PricingModel()
    print(f"runtime pricing         : "
          f"{pricing.normalized_runtime_pricing(result):.3f}x baseline")
    print(f"end-to-end pricing      : "
          f"{pricing.normalized_invocation_pricing(result):.3f}x baseline")


if __name__ == "__main__":
    main()
