#!/usr/bin/env python3
"""Quickstart: allocate through Memento's hardware and watch it work.

Builds a machine + kernel, attaches Memento (object allocator + HOT +
hardware page allocator), performs a burst of small allocations and
frees, and prints what the hardware did: HOT hit rates, arenas, page-pool
activity, and the cycles charged — next to the same burst running on
CPython's pymalloc over the plain kernel.

Run:  python examples/quickstart.py
"""

from repro.allocators.pymalloc import PymallocAllocator
from repro.core.config import MementoConfig
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.runtime import MementoRuntime
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine


def run_burst(malloc, free, access, n=5_000):
    """A short-lived-object burst: allocate, touch, free within 8."""
    live = []
    for i in range(n):
        addr = malloc(24 + 8 * (i % 4))  # a few small size classes
        access(addr)
        live.append(addr)
        if len(live) > 8:
            free(live.pop(0))
    for addr in live:
        free(addr)


def main():
    # --- Memento stack ----------------------------------------------------
    machine = Machine()
    kernel = Kernel(machine)
    process = kernel.create_process()
    runtime = MementoRuntime(
        kernel, process, machine.core, "python",
        HardwarePageAllocator(kernel, MementoConfig()),
    )
    run_burst(
        runtime.malloc, runtime.free,
        lambda addr: runtime.access_object(addr),
    )
    allocator = runtime.context.object_allocator

    print("=== Memento ===")
    print(f"HOT alloc hit rate : {allocator.hot.alloc_hit_rate():.4f}")
    print(f"HOT free hit rate  : {allocator.hot.free_hit_rate():.4f}")
    print(f"live arenas        : {allocator.live_arenas}")
    print(f"pool replenishments: "
          f"{machine.stats['memento.page.replenishments']:.0f}")
    print(f"bypassed lines     : "
          f"{machine.stats['memento.bypass.bypassed_lines']:.0f}")
    mm = sum(
        machine.core.cycles_in(c) for c in ("hw_alloc", "hw_free", "hw_page")
    )
    print(f"hardware mm cycles : {mm:,.0f}")

    # --- baseline stack (pymalloc + kernel) --------------------------------
    machine2 = Machine()
    kernel2 = Kernel(machine2)
    process2 = kernel2.create_process()
    pymalloc = PymallocAllocator(kernel2, process2)
    core2 = machine2.core
    run_burst(
        lambda size: pymalloc.malloc(core2, size),
        lambda addr: pymalloc.free(core2, addr),
        lambda addr: core2.caches.access(addr, write=True),
    )
    mm2 = sum(
        core2.cycles_in(c)
        for c in ("user_alloc", "user_free", "kernel_page", "walk")
    )
    print("\n=== Baseline (pymalloc + kernel) ===")
    print(f"software mm cycles : {mm2:,.0f}")
    print(f"page faults        : "
          f"{machine2.stats['kernel.fault.faults']:.0f}")
    print(f"\nmemory-management cycle reduction: "
          f"{1 - mm / mm2:.1%}  (Memento vs software stack)")


if __name__ == "__main__":
    main()
