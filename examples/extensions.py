#!/usr/bin/env python3
"""Memento beyond the paper's evaluation: §3.4 and §4 built out.

1. Multi-threaded Memento: four threads on four cores, per-thread arena
   windows, cross-thread frees via the hardware coherence path and the
   batched software handler.
2. The ephemeral-aware GC the paper leaves to future work: size classes
   whose objects demonstrably die fast are collected proactively, while
   arenas are still HOT-resident.

Run:  python examples/extensions.py
"""

import random

from repro.core.config import MementoConfig
from repro.core.ephemeral_gc import EphemeralAwareGc, EphemeralGcConfig
from repro.core.multithread import MultiThreadMementoRuntime
from repro.core.page_allocator import HardwarePageAllocator
from repro.core.runtime import MementoRuntime
from repro.kernel.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.params import MachineParams


def multithread_demo():
    print("=== Multi-threaded Memento (§3.4) ===")
    machine = Machine(MachineParams(num_cores=4))
    kernel = Kernel(machine)
    config = MementoConfig()
    runtime = MultiThreadMementoRuntime(
        kernel, kernel.create_process(),
        HardwarePageAllocator(kernel, config),
        num_threads=4, config=config, cross_thread_mode="hardware",
    )
    rng = random.Random(1)
    # A producer/consumer pattern: thread 0 allocates messages, threads
    # 1-3 consume and free them.
    inflight = []
    for _ in range(6_000):
        inflight.append(runtime.malloc(0, rng.choice([48, 96, 160])))
        if len(inflight) > 32:
            runtime.free(rng.randint(1, 3), inflight.pop(0))
    for addr in inflight:
        runtime.free(0, addr)
    stats = machine.stats
    print(f"local frees          : {stats['memento.mt.local_frees']:.0f}")
    print(f"cross-thread frees   : "
          f"{stats['memento.mt.cross_thread_frees']:.0f}")
    print(f"hardware remote frees: "
          f"{stats['memento.mt.hardware_remote_frees']:.0f}")
    print(f"owner HOT invalidations: "
          f"{stats['memento.mt.hot_invalidations']:.0f}")
    print(f"live objects at end  : {runtime.live_objects}")


def ephemeral_gc_demo():
    print("\n=== Ephemeral-aware GC (§4 future work) ===")
    machine = Machine()
    kernel = Kernel(machine)
    config = MementoConfig()
    runtime = MementoRuntime(
        kernel, kernel.create_process(), machine.core, "cpp",
        HardwarePageAllocator(kernel, config), config,
    )
    gc = EphemeralAwareGc(
        runtime, EphemeralGcConfig(proactive_threshold=64)
    )
    rng = random.Random(2)
    # Request handling: short-lived parse nodes (16/32 B) churn, session
    # state (256 B) persists.
    sessions = []
    scratch = []
    for _ in range(12_000):
        scratch.append(gc.malloc(rng.choice([16, 32])))
        if rng.random() < 0.05:
            sessions.append(gc.malloc(256))
        if len(scratch) > 200:
            gc.on_dead(scratch.pop(0))
    print(f"ephemeral classes    : {gc.ephemeral_classes()}  "
          f"(8-byte class indices)")
    print(f"proactive collections: "
          f"{machine.stats['memento.egc.proactive_collections']:.0f}")
    print(f"proactive frees      : "
          f"{machine.stats['memento.egc.proactive_frees']:.0f}")
    allocator = runtime.context.object_allocator
    print(f"HOT free hit rate    : {allocator.hot.free_hit_rate():.3f}  "
          f"(dead ephemerals reclaimed cache-hot)")
    print(f"sessions still live  : {len(sessions)} "
          f"(non-ephemeral class untouched)")


if __name__ == "__main__":
    multithread_demo()
    ephemeral_gc_demo()
