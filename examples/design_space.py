#!/usr/bin/env python3
"""Explore Memento's design space: ablations and the iso-storage check.

Quantifies the design decisions DESIGN.md §5 calls out — the bypass
counter, eager arena refill, 256-object arenas — and re-runs the §6.1
iso-storage experiment (give the HOT's SRAM to the L1D instead).

Run:  python examples/design_space.py [workload-name]
"""

import sys

from repro.analysis.report import render_table
from repro.harness.sweeps import ablation_study, iso_storage_study


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "html"

    ablations = ablation_study(workload)
    print(render_table(
        ["configuration", "speedup over baseline"],
        list(ablations.items()),
        title=f"Ablations on {workload}",
    ))
    full = ablations["full"]
    for name, value in ablations.items():
        if name == "full":
            continue
        delta = (value - full) / full
        print(f"  {name:18s}: {delta:+.2%} vs full design")

    print()
    iso = iso_storage_study(workload)
    print(render_table(
        ["configuration", f"speedup on {workload}"],
        [
            ["9-way L1D (same SRAM as HOT)", iso["iso_storage_speedup"]],
            ["Memento", iso["memento_speedup"]],
        ],
        title="Iso-storage: the HOT's 3.4 KB is worth far more as an "
        "allocator than as cache",
    ))


if __name__ == "__main__":
    main()
