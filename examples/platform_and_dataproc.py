#!/usr/bin/env python3
"""Memento beyond functions: platform operations and data processing.

§6.1 shows Memento also helps the serverless platform itself (OpenFaaS
up/deploy/invoke, written in Go) and long-running data-processing
applications (Redis, Memcached, Silo, SQLite3 on jemalloc with decay
purging). This example regenerates that comparison.

Run:  python examples/platform_and_dataproc.py
"""

from repro.analysis.report import render_table
from repro.harness.experiment import geometric_mean, run_workload
from repro.workloads.registry import DATAPROC_WORKLOADS, PLATFORM_WORKLOADS


def section(title, specs):
    rows = []
    results = []
    for spec in specs:
        result = run_workload(spec)
        results.append(result)
        split = result.user_kernel_split()
        rows.append([
            spec.name,
            result.speedup,
            f"{split['user']:.0%}/{split['kernel']:.0%}",
            result.memento.hot_alloc_hit_rate,
            result.bandwidth_reduction,
        ])
    rows.append([
        "avg", geometric_mean([r.speedup for r in results]), "-", "-", "-",
    ])
    print(render_table(
        ["workload", "speedup", "mm user/kernel", "HOT alloc hit",
         "bw reduction"],
        rows,
        title=title,
    ))
    print()


def main():
    section(
        "Serverless platform operations (paper: 4-7% speedups)",
        PLATFORM_WORKLOADS,
    )
    section(
        "Long-running data processing (paper: 5-11% speedups)",
        DATAPROC_WORKLOADS,
    )
    print(
        "Short-lived allocations are not unique to functions: key-value\n"
        "stores allocate per-request strings and parse buffers, and the\n"
        "platform's Go daemons churn small objects under GC — Memento's\n"
        "HOT absorbs both (§6.1)."
    )


if __name__ == "__main__":
    main()
