# Container packaging for the experiment service (`repro serve`).
#
#   docker build -t repro .
#   docker run -p 8023:8023 repro
#   curl -sf localhost:8023/healthz
#
# The image installs the [fast] extra so the service replays with the
# vectorized kernel; results are bit-identical either way, so an image
# built without it (--build-arg EXTRAS="") serves the same answers.
FROM python:3.12-slim

ARG EXTRAS="fast"

WORKDIR /app

# Dependency layer first so source edits don't re-resolve installs.
COPY pyproject.toml setup.py README.md ./
COPY src ./src
RUN pip install --no-cache-dir -e ".[${EXTRAS}]" \
    || pip install --no-cache-dir -e .

# Persistent result store; mount a volume here to keep results across
# container restarts.
ENV REPRO_CACHE_DIR=/data/repro-cache \
    REPRO_BACKEND=sqlite
VOLUME /data

EXPOSE 8023

# The service's /healthz returns 200 with a queue/backend summary only
# while the listener and job queue are live.
HEALTHCHECK --interval=30s --timeout=3s --start-period=5s --retries=3 \
    CMD python -c "import urllib.request; urllib.request.urlopen('http://127.0.0.1:8023/healthz', timeout=2)"

# Bind all interfaces: the container boundary is the network boundary.
CMD ["python", "-m", "repro", "serve", "--host", "0.0.0.0", "--port", "8023", "--cache-dir", "/data/repro-cache"]
